"""Ablation — the daemon/application-process state split.

Paper §5 attributes the small (632 KB) empty checkpoint to the
architecture: "the run-time system on each node is divided between the
application process and the daemon.  The daemon, which accounts for most
of the code, is shared between all processes on the same node, and is
written in a way that we never have to save or recover its state."

This bench measures what checkpoints would cost if the daemon's state
(group communication buffers, registry, configuration — everything a
monolithic runtime would drag along) had to be saved with every process:
it encodes each daemon's actual live state with the VM encoder and adds
the modelled daemon code/image, then compares per-checkpoint bytes and
times against Starfish's split design.
"""

import pytest

from repro.calibration import (KB, MB, NATIVE_DISK_BANDWIDTH,
                               NATIVE_EMPTY_IMAGE)
from repro.core import AppSpec, CheckpointConfig, FaultPolicy, StarfishCluster
from repro.apps import ComputeSleep
from repro.hetero import portable_nbytes

from bench_helpers import checkpoint_once, print_table, quiet_gcs, \
    start_checkpointed_app

# Fast mode (REPRO_BENCH_FAST=1): nothing to shrink — one empty-state
# checkpoint on a 2-node cluster is already smoke-sized.

#: Modelled size of the daemon's code + Ensemble + management image — the
#: "most of the code" that Starfish keeps out of application processes.
#: (The paper's own runtime is several MB of OCaml runtime + Ensemble.)
DAEMON_IMAGE = 4 * MB


def run_split():
    sf = StarfishCluster.build(nodes=2, gcs_config=quiet_gcs())
    app_id = start_checkpointed_app(sf, nprocs=2, state_bytes=0,
                                    protocol="stop-and-sync",
                                    level="native")
    duration = checkpoint_once(sf, app_id)
    record = sf.store.peek(app_id, 0, sf.store.latest_committed(app_id))

    # What a monolithic design would ALSO have to dump, per process:
    daemon = sf.any_daemon()
    live_state = {
        "registry": [daemon._record_blob(r)
                     for r in daemon.registry.all()],
        "config": dict(daemon.config),
        "members": [str(m) for m in daemon.gm.view.members],
        "delivered": daemon.gm.stats["delivered"],
    }
    # Serializable subset of daemon state (programs are classes; name them).
    for blob in live_state["registry"]:
        blob["program"] = blob["program"].__name__
    daemon_state_bytes = portable_nbytes(live_state, daemon.node.arch)
    return record.nbytes, duration, daemon_state_bytes


def test_ablation_daemon_state_split(benchmark):
    ckpt_bytes, duration, daemon_state = benchmark.pedantic(
        run_split, rounds=1, iterations=1)
    mono_bytes = ckpt_bytes + DAEMON_IMAGE + daemon_state
    mono_time_est = duration + (DAEMON_IMAGE + daemon_state) \
        / NATIVE_DISK_BANDWIDTH
    print_table(
        "Checkpoint cost: Starfish split vs monolithic runtime (empty app)",
        ["design", "file KB", "time s"],
        [["Starfish (daemon state never saved)",
          f"{ckpt_bytes / KB:.0f}", f"{duration:.3f}"],
         ["monolithic (daemon image + live state in every checkpoint)",
          f"{mono_bytes / KB:.0f}", f"{mono_time_est:.3f}"]])
    benchmark.extra_info["split_bytes"] = ckpt_bytes
    benchmark.extra_info["monolithic_bytes"] = mono_bytes

    # The split design's empty checkpoint is the paper's 632 KB figure.
    assert ckpt_bytes == pytest.approx(NATIVE_EMPTY_IMAGE, rel=0.01)
    # A monolithic runtime would checkpoint ~7x more for an empty program.
    assert mono_bytes > 5 * ckpt_bytes
    assert mono_time_est > 1.5 * duration
