"""Figure 4 — virtual-machine-level (heterogeneous) checkpointing time.

Paper: same stop-and-sync protocol but checkpoints taken at the VM level:
260 KB empty image (no VM state saved) in 0.0077 s / 0.0205 s / 0.052 s on
1/2/4 nodes; the application whose native file is 135 MB produces only a
96 MB portable file.
"""

import pytest

from repro.calibration import KB, MB, VM_EMPTY_IMAGE, vm_checkpoint_time
from repro.core import StarfishCluster

from bench_helpers import (FAST, checkpoint_once, fast_or, fit_line,
                           print_table, quiet_gcs, start_checkpointed_app)

#: Per-process payloads (numpy bytes); portable file = 260 KB + ~payload.
PAYLOADS = fast_or([0, 4 * MB, 16 * MB], [0, 4 * MB, 16 * MB, 48 * MB,
                                          96 * MB])
NODE_COUNTS = [1, 2, 4]

PAPER_ANCHORS = {1: 0.0077, 2: 0.0205, 4: 0.052}


def run_fig4():
    results = {}
    for nodes in NODE_COUNTS:
        for payload in PAYLOADS:
            sf = StarfishCluster.build(nodes=nodes, gcs_config=quiet_gcs())
            app_id = start_checkpointed_app(
                sf, nprocs=nodes, state_bytes=payload,
                protocol="stop-and-sync", level="vm")
            duration = checkpoint_once(sf, app_id)
            stored = sf.store.peek(app_id, 0,
                                   sf.store.latest_committed(app_id))
            results[(nodes, payload)] = (duration, stored.nbytes)
    return results


def test_fig4_vm_checkpoint(benchmark):
    results = benchmark.pedantic(run_fig4, rounds=1, iterations=1)

    rows = []
    for nodes in NODE_COUNTS:
        for payload in PAYLOADS:
            duration, file_size = results[(nodes, payload)]
            rows.append([nodes, f"{file_size / MB:.2f}", f"{duration:.4f}"])
    print_table("Figure 4: VM-level checkpoint time (stop-and-sync)",
                ["nodes", "file MB", "measured s"], rows)

    anchor_rows = []
    for nodes, paper in PAPER_ANCHORS.items():
        measured = results[(nodes, 0)][0]
        anchor_rows.append([nodes, f"{paper:.4f}", f"{measured:.4f}",
                            f"{100 * (measured - paper) / paper:+.1f}%"])
        benchmark.extra_info[f"anchor_{nodes}n"] = measured
        # The empty VM image writes in milliseconds; protocol rounds are a
        # visible fraction at this scale, so the tolerance is wider on the
        # 1-node anchor (7.7 ms) than on Fig. 3's 104 ms.
        assert measured == pytest.approx(paper, rel=0.35), nodes
    print_table("Figure 4 anchors (260 KB empty image)",
                ["nodes", "paper s", "measured s", "delta"], anchor_rows)

    # Empty image is ~260 KB — the VM image is NOT saved.
    empty_file = results[(1, 0)][1]
    assert empty_file == pytest.approx(VM_EMPTY_IMAGE, rel=0.02)

    # Linear growth per node count.
    for nodes in NODE_COUNTS:
        xs = [results[(nodes, p)][1] for p in PAYLOADS]
        ys = [results[(nodes, p)][0] for p in PAYLOADS]
        slope, _b, r2 = fit_line(xs, ys)
        assert r2 > 0.999 and slope > 0

    # VM-level is far faster than native at the same payload (Fig 3 vs 4):
    # the dump bandwidth difference alone is > 5x.  Fast mode trims the
    # 48 MB point off the axis.
    if not FAST:
        vm_big = results[(2, 48 * MB)][0]
        from repro.calibration import native_checkpoint_time
        assert vm_big < native_checkpoint_time(48 * MB, 2) / 3

    # The same application checkpoints smaller at VM level than native:
    # 96 MB portable vs 135 MB native is a ~0.71 ratio.
    from repro.calibration import VM_PAYLOAD_FACTOR
    assert 0.65 < VM_PAYLOAD_FACTOR < 0.75
