"""Wall-clock scaling sweep — simulator events/second vs cluster size.

The paper's argument is that fault tolerance must not tax the critical
data path; the reproduction's "hardware" is the discrete-event engine, so
its throughput (processed events per wall-clock second) is what caps the
cluster sizes and message densities we can study.  This bench sweeps
cluster size and message density for three workload shapes:

* ``pingpong``  — the Figure 5 round-trip app, high message density on a
  small cluster (per-message hot-path cost);
* ``jacobi``    — bulk-synchronous halo exchange with ``nprocs == nodes``
  and a small per-rank block, the event-dense scaling configuration
  (8 -> 256 nodes in full mode, plus 512/1024-node *sparse* rows: quiet
  heartbeats and one collective wave, or the quadratic control-path
  multicast dominates the sweep);
* ``traffic``   — the :class:`~repro.apps.TrafficGenerator` control-path
  churn workload (many short-lived client jobs through the fleet
  scheduler);
* ``chaos``     — the ``crash-recover`` fault campaign (full stack:
  GCS + daemons + C/R + fault injection + golden-run comparison).

Selected configurations additionally run under the **calendar** event
scheduler (``ClusterSpec.scheduler="calendar"``) as ``.../calendar``
rows; their speedups are computed against the *heap* baseline row of the
same configuration.

Results go to ``benchmarks/BENCH_scaling.json``.  If a committed
pre-change baseline (``BENCH_scaling_baseline.json``) exists, per-config
speedups are computed against it; the acceptance gates are >= 1.5x
events/sec on the 128-node event-dense Jacobi configuration (the PR-3
hot-path overhaul) and >= 1.3x on the 256-node one (the scheduler-seam
PR must not tax the default dispatch path).  The ``.../calendar`` rows'
ratios are reported for comparison but not asserted — the pure-Python
calendar queue trades constant-factor overhead for O(1) asymptotics
against C-implemented ``heapq``.  Speedup assertions only run when
``REPRO_BENCH_ASSERT_SPEEDUP=1`` (the ratio is only meaningful on the
machine that recorded the baseline).

Every configuration runs ``REPRO_BENCH_REPEATS`` times (default 2 full /
1 fast) and reports the best events/sec — single-shot numbers swing
+-20% with machine load, which is larger than the effects measured here.

Fast mode (``REPRO_BENCH_FAST=1``) shrinks the sweep to seconds for CI
smoke coverage.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.apps import Jacobi1D, PingPong, TrafficGenerator
from repro.cluster import ClusterSpec
from repro.core import AppSpec, StarfishCluster
from repro.faults import CampaignRunner
from repro.faults.campaigns import get_campaign
from repro.fleet import FleetController

from bench_helpers import FAST, print_table, quiet_gcs

SEED = 11
HERE = Path(__file__).parent
OUT_PATH = HERE / "BENCH_scaling.json"
BASELINE_PATH = HERE / "BENCH_scaling_baseline.json"

#: Acceptance gates: required events/sec speedup vs the pre-overhaul
#: baseline, per configuration.  ``jacobi/128/dense`` is the PR-3
#: hot-path-overhaul gate; ``jacobi/256/dense`` is the PR-10 gate (the
#: scheduler seam and the bench restructuring must not tax the default
#: heap data path at the largest dense configuration).
TARGETS = {
    "jacobi/128/dense": 1.5,
    "jacobi/256/dense": 1.3,
}

#: Best-of-N repeats per configuration (machine noise is +-20%).
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "1" if FAST else "2"))


def _spec(nodes: int, scheduler: str = "heap",
          heartbeat: float = 2.0) -> ClusterSpec:
    # Quiet heartbeats keep the sweep focused on the data path; the chaos
    # configs use the campaign default (control-path-dense) instead.
    return ClusterSpec(nodes=nodes, seed=SEED, scheduler=scheduler,
                       gcs_config=quiet_gcs(heartbeat))


def _config_key(label: str, nodes: int, density: str,
                scheduler: str) -> str:
    key = f"{label}/{nodes}/{density}"
    return key if scheduler == "heap" else f"{key}/{scheduler}"


def _measure(label: str, nodes: int, density: str, fn,
             scheduler: str = "heap"):
    """Run one config ``REPEATS`` times; keep the fastest run's
    events/sec (the event count itself is deterministic)."""
    best = None
    for _ in range(max(1, REPEATS)):
        t0 = time.perf_counter()
        engine, sim_end = fn()
        wall = time.perf_counter() - t0
        if best is None or wall < best[0]:
            best = (wall, engine.events_processed, sim_end)
    wall, events, sim_end = best
    return {
        "config": _config_key(label, nodes, density, scheduler),
        "workload": label,
        "nodes": nodes,
        "density": density,
        "scheduler": scheduler,
        "wall_s": round(wall, 4),
        "events": events,
        "events_per_sec": round(events / wall, 1),
        "sim_s": round(sim_end, 6),
    }


def run_pingpong(nodes: int, reps: int, sizes) -> tuple:
    sf = StarfishCluster.build(spec=_spec(nodes))
    sf.run(AppSpec(program=PingPong, nprocs=2,
                   params={"sizes": list(sizes), "reps": reps}),
           timeout=4000)
    return sf.engine, sf.engine.now


def run_jacobi(nodes: int, iterations: int, cells_per_rank: int,
               scheduler: str = "heap", heartbeat: float = 2.0,
               iters_per_step: int = 10) -> tuple:
    sf = StarfishCluster.build(spec=_spec(nodes, scheduler, heartbeat))
    sf.run(AppSpec(program=Jacobi1D, nprocs=nodes,
                   params={"n": cells_per_rank * nodes,
                           "iterations": iterations,
                           "iters_per_step": iters_per_step}),
           timeout=4000)
    return sf.engine, sf.engine.now


def run_traffic(nodes: int, jobs: int, scheduler: str = "heap") -> tuple:
    """Control-path churn: short-lived client jobs through the fleet
    scheduler (see :mod:`repro.apps.traffic`)."""
    sf = StarfishCluster.build(spec=_spec(nodes, scheduler))
    controller = FleetController(sf, auto_drain=False)
    gen = TrafficGenerator(controller, jobs=jobs, rate=10.0,
                           nprocs=(1, 4), seed=SEED)
    gen.drain(timeout=600.0)
    controller.close()
    return sf.engine, sf.engine.now


def run_chaos(nodes: int) -> tuple:
    # The standard campaign cluster (default GCS config: control-path
    # event density grows quadratically with the group size).
    campaign = get_campaign("crash-recover")
    runner = CampaignRunner(campaign, seed=SEED, protocol="stop-and-sync",
                            policy="restart", nodes=nodes,
                            compare_golden=False)
    report = runner.run()
    # The runner owns its engine; reconstruct the numbers from the report.
    class _EngineView:
        events_processed = report.data["engine"]["events_processed"]
    return _EngineView, report.data["engine"]["final_time"]


def sweep(fast: bool = FAST):
    if fast:
        pingpong_cfgs = [(8, 30, (1, 1024))]
        jacobi_cfgs = [(8, "dense", 20, 64)]
        # Both schedulers on one small config: the CI byte-identity +
        # liveness smoke for the calendar queue.
        jacobi_sched_cfgs = [(16, "dense", 20, 64, ("heap", "calendar"))]
        bignode_cfgs = []
        traffic_cfgs = [(8, 20, ("heap", "calendar"))]
        chaos_nodes = [8]
    else:
        pingpong_cfgs = [(8, 300, (1, 1024, 65536))]
        jacobi_cfgs = [(8, "sparse", 40, 256), (32, "sparse", 40, 256),
                       (8, "dense", 60, 64), (32, "dense", 60, 64),
                       (128, "dense", 60, 64)]
        jacobi_sched_cfgs = [(256, "dense", 60, 64, ("heap", "calendar"))]
        # 512/1024-node rows: quiet heartbeats (30s) and a single
        # collective wave — the n^2 full-group multicast during the
        # serialized collectives otherwise explodes the event count
        # (tens of millions at 1024 nodes) and drowns the data path.
        bignode_cfgs = [(512, ("heap", "calendar")),
                        (1024, ("heap", "calendar"))]
        traffic_cfgs = [(32, 200, ("heap", "calendar"))]
        chaos_nodes = [8, 32]

    rows = []
    for nodes, reps, sizes in pingpong_cfgs:
        rows.append(_measure("pingpong", nodes, f"reps{reps}",
                             lambda n=nodes, r=reps, s=sizes:
                             run_pingpong(n, r, s)))
    for nodes, density, iters, cells in jacobi_cfgs:
        rows.append(_measure("jacobi", nodes, density,
                             lambda n=nodes, i=iters, c=cells:
                             run_jacobi(n, i, c)))
    for nodes, density, iters, cells, schedulers in jacobi_sched_cfgs:
        for sched in schedulers:
            rows.append(_measure("jacobi", nodes, density,
                                 lambda n=nodes, i=iters, c=cells, s=sched:
                                 run_jacobi(n, i, c, scheduler=s),
                                 scheduler=sched))
    for nodes, schedulers in bignode_cfgs:
        for sched in schedulers:
            rows.append(_measure(
                "jacobi", nodes, "sparse",
                lambda n=nodes, s=sched:
                run_jacobi(n, iterations=8, cells_per_rank=16,
                           scheduler=s, heartbeat=30.0, iters_per_step=8),
                scheduler=sched))
    for nodes, jobs, schedulers in traffic_cfgs:
        for sched in schedulers:
            rows.append(_measure("traffic", nodes, f"jobs{jobs}",
                                 lambda n=nodes, j=jobs, s=sched:
                                 run_traffic(n, j, scheduler=s),
                                 scheduler=sched))
    for nodes in chaos_nodes:
        rows.append(_measure("chaos", nodes, "standard",
                             lambda n=nodes: run_chaos(n)))
    return rows


def _load_baseline():
    if BASELINE_PATH.exists():
        return json.loads(BASELINE_PATH.read_text())
    return None


def build_report(rows, fast: bool):
    report = {"fast": bool(fast), "seed": SEED, "configs": rows}
    baseline = _load_baseline()
    if baseline is not None:
        base_by_key = {c["config"]: c for c in baseline.get("configs", [])}
        speedups = {}
        for row in rows:
            # Scheduler variants compare against the heap baseline row
            # of the same configuration (the baseline predates the
            # calendar queue and never grows scheduler-suffixed rows).
            base_key = f"{row['workload']}/{row['nodes']}/{row['density']}"
            base = base_by_key.get(row["config"]) \
                or base_by_key.get(base_key)
            if base is None or not base.get("wall_s"):
                continue
            speedups[row["config"]] = {
                "events_per_sec": round(row["events_per_sec"]
                                        / base["events_per_sec"], 3),
                "wall": round(base["wall_s"] / row["wall_s"], 3),
                "events_ratio": round(row["events"] / base["events"], 3),
            }
        report["baseline_file"] = BASELINE_PATH.name
        report["speedup_vs_baseline"] = speedups
        report["targets"] = [
            {
                "config": key,
                "required_events_per_sec_speedup": required,
                "achieved_events_per_sec_speedup":
                    speedups[key]["events_per_sec"],
                "achieved_wall_speedup": speedups[key]["wall"],
            }
            for key, required in TARGETS.items() if key in speedups
        ]
    return report


def print_report(report):
    speedups = report.get("speedup_vs_baseline", {})
    print_table(
        "Engine scaling sweep (wall-clock events/sec)",
        ["config", "events", "wall s", "events/s", "sim s",
         "ev/s vs base", "wall vs base"],
        [[c["config"], c["events"], f"{c['wall_s']:.2f}",
          f"{c['events_per_sec']:,.0f}", f"{c['sim_s']:.2f}",
          (f"{speedups[c['config']]['events_per_sec']:.2f}x"
           if c["config"] in speedups else "-"),
          (f"{speedups[c['config']]['wall']:.2f}x"
           if c["config"] in speedups else "-")]
         for c in report["configs"]])
    for t in report.get("targets", ()):
        print(f"\nacceptance gate {t['config']}: "
              f"{t['achieved_events_per_sec_speedup']:.2f}x events/sec "
              f"(wall {t['achieved_wall_speedup']:.2f}x, "
              f"required {t['required_events_per_sec_speedup']}x)")


def out_path(fast: bool = FAST) -> Path:
    # Fast-mode smoke runs must not clobber the committed full-sweep
    # numbers; they land in a sibling file instead.
    return HERE / "BENCH_scaling_fast.json" if fast else OUT_PATH


def run_and_write(fast: bool = FAST):
    report = build_report(sweep(fast=fast), fast=fast)
    out_path(fast).write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def test_scaling(benchmark):
    report = benchmark.pedantic(run_and_write, rounds=1, iterations=1)
    print_report(report)
    assert all(c["events"] > 0 for c in report["configs"])
    if os.environ.get("REPRO_BENCH_ASSERT_SPEEDUP") == "1":
        for t in report.get("targets", ()):
            assert (t["achieved_events_per_sec_speedup"]
                    >= t["required_events_per_sec_speedup"]), t


if __name__ == "__main__":
    print_report(run_and_write())
    print(f"\nwrote {out_path()}")
