"""Wall-clock scaling sweep — simulator events/second vs cluster size.

The paper's argument is that fault tolerance must not tax the critical
data path; the reproduction's "hardware" is the discrete-event engine, so
its throughput (processed events per wall-clock second) is what caps the
cluster sizes and message densities we can study.  This bench sweeps
cluster size and message density for three workload shapes:

* ``pingpong``  — the Figure 5 round-trip app, high message density on a
  small cluster (per-message hot-path cost);
* ``jacobi``    — bulk-synchronous halo exchange with ``nprocs == nodes``
  and a small per-rank block, the event-dense scaling configuration
  (8 -> 256 nodes in full mode);
* ``chaos``     — the ``crash-recover`` fault campaign (full stack:
  GCS + daemons + C/R + fault injection + golden-run comparison).

Results go to ``benchmarks/BENCH_scaling.json``.  If a committed
pre-change baseline (``BENCH_scaling_baseline.json``) exists, per-config
speedups are computed against it; the engine-overhaul acceptance gate is
>= 1.5x events/sec on the 128-node event-dense Jacobi configuration.
Speedup assertions only run when ``REPRO_BENCH_ASSERT_SPEEDUP=1`` (the
ratio is only meaningful on the machine that recorded the baseline).

Fast mode (``REPRO_BENCH_FAST=1``) shrinks the sweep to seconds for CI
smoke coverage.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.apps import Jacobi1D, PingPong
from repro.cluster import ClusterSpec
from repro.core import AppSpec, StarfishCluster
from repro.faults import CampaignRunner
from repro.faults.campaigns import get_campaign

from bench_helpers import FAST, print_table, quiet_gcs

SEED = 11
HERE = Path(__file__).parent
OUT_PATH = HERE / "BENCH_scaling.json"
BASELINE_PATH = HERE / "BENCH_scaling_baseline.json"

#: The acceptance-gate configuration (event-dense, 128 nodes).
TARGET_KEY = "jacobi/128/dense"
TARGET_SPEEDUP = 1.5


def _spec(nodes: int) -> ClusterSpec:
    # Quiet heartbeats keep the sweep focused on the data path; the chaos
    # configs use the campaign default (control-path-dense) instead.
    return ClusterSpec(nodes=nodes, seed=SEED, gcs_config=quiet_gcs(2.0))


def _measure(label: str, nodes: int, density: str, fn):
    """Run one config; events/sec over the engine's processed-event count."""
    t0 = time.perf_counter()
    engine, sim_end = fn()
    wall = time.perf_counter() - t0
    return {
        "config": f"{label}/{nodes}/{density}",
        "workload": label,
        "nodes": nodes,
        "density": density,
        "wall_s": round(wall, 4),
        "events": engine.events_processed,
        "events_per_sec": round(engine.events_processed / wall, 1),
        "sim_s": round(sim_end, 6),
    }


def run_pingpong(nodes: int, reps: int, sizes) -> tuple:
    sf = StarfishCluster.build(spec=_spec(nodes))
    sf.run(AppSpec(program=PingPong, nprocs=2,
                   params={"sizes": list(sizes), "reps": reps}),
           timeout=4000)
    return sf.engine, sf.engine.now


def run_jacobi(nodes: int, iterations: int, cells_per_rank: int) -> tuple:
    sf = StarfishCluster.build(spec=_spec(nodes))
    sf.run(AppSpec(program=Jacobi1D, nprocs=nodes,
                   params={"n": cells_per_rank * nodes,
                           "iterations": iterations,
                           "iters_per_step": 10}),
           timeout=4000)
    return sf.engine, sf.engine.now


def run_chaos(nodes: int) -> tuple:
    # The standard campaign cluster (default GCS config: control-path
    # event density grows quadratically with the group size).
    campaign = get_campaign("crash-recover")
    runner = CampaignRunner(campaign, seed=SEED, protocol="stop-and-sync",
                            policy="restart", nodes=nodes,
                            compare_golden=False)
    report = runner.run()
    # The runner owns its engine; reconstruct the numbers from the report.
    class _EngineView:
        events_processed = report.data["engine"]["events_processed"]
    return _EngineView, report.data["engine"]["final_time"]


def sweep(fast: bool = FAST):
    if fast:
        pingpong_cfgs = [(8, 30, (1, 1024))]
        jacobi_cfgs = [(8, "dense", 20, 64), (16, "dense", 20, 64)]
        chaos_nodes = [8]
    else:
        pingpong_cfgs = [(8, 300, (1, 1024, 65536))]
        jacobi_cfgs = [(8, "sparse", 40, 256), (32, "sparse", 40, 256),
                       (8, "dense", 60, 64), (32, "dense", 60, 64),
                       (128, "dense", 60, 64), (256, "dense", 60, 64)]
        chaos_nodes = [8, 32]

    rows = []
    for nodes, reps, sizes in pingpong_cfgs:
        rows.append(_measure("pingpong", nodes, f"reps{reps}",
                             lambda n=nodes, r=reps, s=sizes:
                             run_pingpong(n, r, s)))
    for nodes, density, iters, cells in jacobi_cfgs:
        rows.append(_measure("jacobi", nodes, density,
                             lambda n=nodes, i=iters, c=cells:
                             run_jacobi(n, i, c)))
    for nodes in chaos_nodes:
        rows.append(_measure("chaos", nodes, "standard",
                             lambda n=nodes: run_chaos(n)))
    return rows


def _load_baseline():
    if BASELINE_PATH.exists():
        return json.loads(BASELINE_PATH.read_text())
    return None


def build_report(rows, fast: bool):
    report = {"fast": bool(fast), "seed": SEED, "configs": rows}
    baseline = _load_baseline()
    if baseline is not None:
        base_by_key = {c["config"]: c for c in baseline.get("configs", [])}
        speedups = {}
        for row in rows:
            base = base_by_key.get(row["config"])
            if base is None or not base.get("wall_s"):
                continue
            speedups[row["config"]] = {
                "events_per_sec": round(row["events_per_sec"]
                                        / base["events_per_sec"], 3),
                "wall": round(base["wall_s"] / row["wall_s"], 3),
                "events_ratio": round(row["events"] / base["events"], 3),
            }
        report["baseline_file"] = BASELINE_PATH.name
        report["speedup_vs_baseline"] = speedups
        if TARGET_KEY in speedups:
            report["target"] = {
                "config": TARGET_KEY,
                "required_events_per_sec_speedup": TARGET_SPEEDUP,
                "achieved_events_per_sec_speedup":
                    speedups[TARGET_KEY]["events_per_sec"],
                "achieved_wall_speedup": speedups[TARGET_KEY]["wall"],
            }
    return report


def print_report(report):
    speedups = report.get("speedup_vs_baseline", {})
    print_table(
        "Engine scaling sweep (wall-clock events/sec)",
        ["config", "events", "wall s", "events/s", "sim s",
         "ev/s vs base", "wall vs base"],
        [[c["config"], c["events"], f"{c['wall_s']:.2f}",
          f"{c['events_per_sec']:,.0f}", f"{c['sim_s']:.2f}",
          (f"{speedups[c['config']]['events_per_sec']:.2f}x"
           if c["config"] in speedups else "-"),
          (f"{speedups[c['config']]['wall']:.2f}x"
           if c["config"] in speedups else "-")]
         for c in report["configs"]])
    if "target" in report:
        t = report["target"]
        print(f"\nacceptance gate {t['config']}: "
              f"{t['achieved_events_per_sec_speedup']:.2f}x events/sec "
              f"(wall {t['achieved_wall_speedup']:.2f}x, "
              f"required {t['required_events_per_sec_speedup']}x)")


def out_path(fast: bool = FAST) -> Path:
    # Fast-mode smoke runs must not clobber the committed full-sweep
    # numbers; they land in a sibling file instead.
    return HERE / "BENCH_scaling_fast.json" if fast else OUT_PATH


def run_and_write(fast: bool = FAST):
    report = build_report(sweep(fast=fast), fast=fast)
    out_path(fast).write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def test_scaling(benchmark):
    report = benchmark.pedantic(run_and_write, rounds=1, iterations=1)
    print_report(report)
    assert all(c["events"] > 0 for c in report["configs"])
    if (os.environ.get("REPRO_BENCH_ASSERT_SPEEDUP") == "1"
            and "target" in report):
        t = report["target"]
        assert (t["achieved_events_per_sec_speedup"]
                >= t["required_events_per_sec_speedup"]), t


if __name__ == "__main__":
    print_report(run_and_write())
    print(f"\nwrote {out_path()}")
