"""Table 2 — heterogeneous C/R across the six tested machine types.

The paper lists six architecture/OS combinations (mixed endianness, mixed
32/64-bit word length) that its VM-level checkpointing was tested across.
This bench checkpoints a representative application state on *each* machine
and restores it on *every* machine (the full 6x6 matrix), verifying exact
state equality and reporting when representation conversion occurred and
what it cost.
"""

import numpy as np
import pytest

from repro.calibration import HETERO_CONVERT_BANDWIDTH
from repro.ckpt import VmCheckpointer
from repro.cluster import TABLE2_MACHINES

from bench_helpers import print_table

# Fast mode (REPRO_BENCH_FAST=1): nothing to shrink — the 6x6 matrix is
# pure in-memory encode/decode with no cluster, already smoke-sized.

STATE = {
    "iteration": 912,
    "residual": 3.0517578125e-05,
    "grid": np.arange(4096, dtype=np.float64),
    "flags": [True, False, None],
    "tag": "jacobi-block-7",
    "wide_counter": (1 << 40),      # unboxed on 64-bit, boxed on 32-bit
}


def state_equal(a, b):
    return (a["iteration"] == b["iteration"]
            and a["residual"] == b["residual"]
            and np.array_equal(a["grid"], b["grid"])
            and a["flags"] == b["flags"]
            and a["tag"] == b["tag"]
            and a["wide_counter"] == b["wide_counter"])


def run_matrix():
    ck = VmCheckpointer()
    out = {}
    for src in TABLE2_MACHINES:
        image, nbytes = ck.capture(STATE, src)
        for dst in TABLE2_MACHINES:
            restored, extra = ck.restore(image, nbytes, dst)
            out[(src.name, dst.name)] = (state_equal(STATE, restored),
                                         extra, nbytes)
    return out


def test_table2_heterogeneous_matrix(benchmark):
    matrix = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    short = {m.name: f"{m.endianness[0].upper()}E/{m.word_bits}"
             for m in TABLE2_MACHINES}
    header = ["ckpt on \\ restart on"] + [short[m.name]
                                          for m in TABLE2_MACHINES]
    rows = []
    for src in TABLE2_MACHINES:
        row = [f"{src.name[:28]} ({short[src.name]})"]
        for dst in TABLE2_MACHINES:
            ok, extra, _n = matrix[(src.name, dst.name)]
            assert ok, (src.name, dst.name)
            row.append("ok" if extra == 0 else f"conv {extra * 1e3:.1f}ms")
        rows.append(row)
    print_table("Table 2: heterogeneous C/R matrix "
                "(ok = no conversion needed)", header, rows)

    conversions = sum(1 for (ok, extra, _n) in matrix.values() if extra > 0)
    identical = sum(1 for (ok, extra, _n) in matrix.values() if extra == 0)
    benchmark.extra_info["pairs"] = len(matrix)
    benchmark.extra_info["converted"] = conversions
    assert len(matrix) == 36
    # Same-representation groups: 3 little-endian 32-bit machines, 1
    # big-endian... the endianness/word-length classes predict exactly
    # which pairs convert.
    expected_identical = sum(
        1 for a in TABLE2_MACHINES for b in TABLE2_MACHINES
        if a.same_representation(b))
    assert identical == expected_identical
    # Conversion cost follows the blob size over the conversion bandwidth.
    any_conv = next(v for v in matrix.values() if v[1] > 0)
    _ok, extra, nbytes = any_conv
    from repro.calibration import VM_EMPTY_IMAGE
    blob = nbytes - VM_EMPTY_IMAGE
    assert extra == pytest.approx(blob / HETERO_CONVERT_BANDWIDTH, rel=0.01)
