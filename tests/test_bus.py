"""Object bus unit tests."""

import pytest

from repro.bus import (CheckpointEvent, ConfigEvent, CoordinationEvent,
                       MembershipEvent, ObjectBus, ShutdownEvent)
from repro.calibration import BUS_DISPATCH
from repro.cluster import Cluster
from repro.errors import SimulationError


def make_bus():
    cluster = Cluster.build(nodes=1)
    bus = ObjectBus(cluster.engine, name="t")
    bus.start(cluster.node("n0"))
    return cluster.engine, bus


def test_post_dispatches_to_subscriber():
    eng, bus = make_bus()
    got = []
    bus.subscribe(ConfigEvent, got.append)
    bus.post(ConfigEvent(key="nprocs", value=4))
    eng.run(until=0.001)
    assert got == [ConfigEvent(key="nprocs", value=4)]


def test_multiple_listeners_same_event():
    eng, bus = make_bus()
    got = []
    bus.subscribe(CoordinationEvent, lambda e: got.append(("a", e.payload)))
    bus.subscribe(CoordinationEvent, lambda e: got.append(("b", e.payload)))
    bus.post(CoordinationEvent(payload=1))
    eng.run(until=0.001)
    assert got == [("a", 1), ("b", 1)]


def test_no_inheritance_dispatch():
    eng, bus = make_bus()
    got = []
    bus.subscribe(CoordinationEvent, got.append)
    bus.post(ConfigEvent(key="x"))  # different type entirely
    eng.run(until=0.001)
    assert got == []
    assert bus.stats["dropped"] == 1


def test_priority_order_checkpoint_beats_coordination():
    eng, bus = make_bus()
    got = []
    bus.subscribe(CoordinationEvent, lambda e: got.append("coord"))
    bus.subscribe(CheckpointEvent, lambda e: got.append("ckpt"))
    bus.subscribe(ShutdownEvent, lambda e: got.append("shutdown"))
    # Post in "wrong" order; dispatch must follow priorities
    # (shutdown=0 < ckpt=1 < coordination=5).
    bus.post(CoordinationEvent(payload=None))
    bus.post(CheckpointEvent(op="request"))
    bus.post(ShutdownEvent(reason="test"))
    eng.run(until=0.001)
    assert got == ["shutdown", "ckpt", "coord"]


def test_generator_handlers_do_simulated_work():
    eng, bus = make_bus()
    done = []

    def slow_handler(event):
        yield eng.timeout(0.5)
        done.append(eng.now)

    bus.subscribe(CheckpointEvent, slow_handler)
    bus.post(CheckpointEvent(op="request"))
    bus.post(CheckpointEvent(op="request"))
    eng.run()
    assert len(done) == 2
    # Second handler run starts after the first finishes (+ dispatch cost).
    assert done[1] - done[0] == pytest.approx(0.5 + BUS_DISPATCH)


def test_dispatch_cost_charged_per_listener():
    eng, bus = make_bus()
    times = []
    for _ in range(3):
        bus.subscribe(ConfigEvent, lambda e: times.append(eng.now))
    bus.post(ConfigEvent(key="k"))
    eng.run()
    assert times[0] == pytest.approx(BUS_DISPATCH)
    assert times[2] == pytest.approx(3 * BUS_DISPATCH)


def test_unsubscribe():
    eng, bus = make_bus()
    got = []
    bus.subscribe(ConfigEvent, got.append)
    bus.unsubscribe(ConfigEvent, got.append)
    bus.post(ConfigEvent(key="x"))
    eng.run(until=0.01)
    assert got == []


def test_subscribe_non_event_type_rejected():
    eng, bus = make_bus()
    with pytest.raises(SimulationError):
        bus.subscribe(int, print)  # type: ignore[arg-type]


def test_double_start_rejected():
    cluster = Cluster.build(nodes=1)
    bus = ObjectBus(cluster.engine)
    node = cluster.node("n0")
    bus.start(node)
    with pytest.raises(SimulationError):
        bus.start(node)


def test_stop_halts_dispatch():
    eng, bus = make_bus()
    got = []
    bus.subscribe(ConfigEvent, got.append)
    bus.post(ConfigEvent(key="first"))
    eng.run(until=0.001)
    bus.stop()
    bus.post(ConfigEvent(key="second"))
    eng.run()
    assert [e.key for e in got] == ["first"]


def test_membership_event_defaults():
    ev = MembershipEvent(members=("a", "b"), joined=("b",), left=())
    assert ev.priority == 2
    assert ev.members == ("a", "b")
