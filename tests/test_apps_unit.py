"""The application library, checked against independent references."""

import numpy as np
import pytest

from repro.apps import Jacobi1D, MonteCarloPi, PingPong
from repro.core import AppSpec, StarfishCluster
from repro.errors import DaemonError, MpiError


def test_montecarlo_batches_are_replay_deterministic():
    # The RNG stream is keyed by (rank, progress): replaying an aborted or
    # restored step must resample the identical batch.
    rng1 = np.random.default_rng((3 + 1) * 1_000_003 + 5000)
    rng2 = np.random.default_rng((3 + 1) * 1_000_003 + 5000)
    assert np.array_equal(rng1.random((100, 2)), rng2.random((100, 2)))


def test_montecarlo_converges_with_more_samples():
    sf = StarfishCluster.build(nodes=2)
    rough = sf.run(AppSpec(program=MonteCarloPi, nprocs=2,
                           params={"shots": 2_000, "chunk": 500}))[0]
    sf2 = StarfishCluster.build(nodes=2)
    fine = sf2.run(AppSpec(program=MonteCarloPi, nprocs=2,
                           params={"shots": 200_000, "chunk": 5000}))[0]
    assert abs(fine - np.pi) <= abs(rough - np.pi) + 0.02


def test_jacobi_matches_serial_reference():
    # 1-D Jacobi with u(0)=1, u(n+1)=0 — compare the parallel run against
    # a direct serial sweep of the same recurrence.
    n, iters = 64, 50
    u = np.zeros(n + 2)
    u[0] = 1.0
    for _ in range(iters):
        u[1:-1] = 0.5 * (u[:-2] + u[2:])
    reference_sum = float(np.sum(u[1:-1]))

    sf = StarfishCluster.build(nodes=4)
    results = sf.run(AppSpec(program=Jacobi1D, nprocs=4,
                             params={"n": n, "iterations": iters,
                                     "iters_per_step": 5,
                                     "compute_ns_per_cell": 10}))
    done_iters, _residual, total = results[0]
    assert done_iters == iters
    assert total == pytest.approx(reference_sum, rel=1e-9)


def test_jacobi_rejects_indivisible_domain():
    sf = StarfishCluster.build(nodes=3)
    handle = sf.submit(AppSpec(program=Jacobi1D, nprocs=3,
                               params={"n": 100, "iterations": 10}))
    with pytest.raises(DaemonError, match="failed"):
        sf.run_to_completion(handle, timeout=30)


def test_pingpong_rtt_monotone_in_size():
    sf = StarfishCluster.build(nodes=2)
    sizes = [1, 512, 8192]
    results = sf.run(AppSpec(program=PingPong, nprocs=2,
                             params={"sizes": sizes, "reps": 5}))
    rtts = results[0]
    assert rtts[1] < rtts[512] < rtts[8192]


def test_pingpong_extra_ranks_idle():
    # PingPong only uses ranks 0 and 1; extra ranks must still terminate.
    sf = StarfishCluster.build(nodes=3)
    results = sf.run(AppSpec(program=PingPong, nprocs=3,
                             params={"sizes": [1], "reps": 3}))
    assert set(results) == {0, 1, 2}
    assert results[2] is None


def test_shorttask_runs_to_completion():
    from repro.apps import ShortTask
    sf = StarfishCluster.build(nodes=2)
    results = sf.run(AppSpec(program=ShortTask, nprocs=2,
                             params={"steps": 4, "step_time": 0.01}))
    assert results == {0: 4, 1: 4}


def test_traffic_generator_is_seed_deterministic():
    from repro.apps import TrafficGenerator
    from repro.cluster import ClusterSpec
    from repro.fleet import FleetController

    def run(scheduler):
        sf = StarfishCluster.build(spec=ClusterSpec(nodes=4, seed=11,
                                                    scheduler=scheduler))
        gen = TrafficGenerator(FleetController(sf, auto_drain=False),
                               jobs=12, rate=8.0, seed=5)
        finished = gen.drain(timeout=120.0)
        trace = [(j.job_id, j.spec.nprocs, round(j.submit_time, 9),
                  j.state) for j in gen.submitted]
        return finished, trace, sf.engine.events_processed

    a = run("heap")
    assert a[0] == 12
    assert all(state == "done" for *_rest, state in a[1])
    assert a == run("heap")         # same seed, same everything
    assert a == run("calendar")     # scheduler-independent by contract


def test_traffic_generator_validates_parameters():
    from repro.apps import TrafficGenerator
    from repro.fleet import FleetController
    sf = StarfishCluster.build(nodes=2)
    controller = FleetController(sf)
    with pytest.raises(ValueError):
        TrafficGenerator(controller, jobs=0)
    with pytest.raises(ValueError):
        TrafficGenerator(controller, rate=0.0)
