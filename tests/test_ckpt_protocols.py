"""Distributed checkpoint protocols over the fake-runtime harness."""

import pytest

from repro.calibration import native_checkpoint_time, vm_checkpoint_time
from repro.ckpt.protocols import make_protocol
from repro.errors import CheckpointError

from tests.ckpt_helpers import CrHarness


def test_protocol_factory():
    assert make_protocol("stop-and-sync").name == "stop-and-sync"
    assert make_protocol("chandy-lamport").name == "chandy-lamport"
    assert make_protocol("uncoordinated").name == "uncoordinated"
    with pytest.raises(CheckpointError):
        make_protocol("nonsense")


@pytest.mark.parametrize("protocol", ["stop-and-sync", "chandy-lamport"])
def test_coordinated_checkpoint_commits_on_all_ranks(protocol):
    h = CrHarness(nranks=4, protocol=protocol)
    done = h.protocols[0].request_checkpoint()
    version = h.engine.run(done)
    assert version == 1
    assert h.store.latest_committed("testapp") == 1
    for rank in range(4):
        assert h.store.has("testapp", rank, 1), rank
        assert h.protocols[rank].last_committed == 1
    # Every rank resumed.
    assert not any(ctx.paused for ctx in h.ctxs)


@pytest.mark.parametrize("protocol", ["stop-and-sync", "chandy-lamport"])
def test_coordinated_records_carry_program_state(protocol):
    h = CrHarness(nranks=2, protocol=protocol)
    h.app_state[0]["counter"] = 99
    h.engine.run(h.protocols[1].request_checkpoint())
    rec = h.store.peek("testapp", 0, 1)
    _, _, state = rec.image          # native image tuple
    assert state["counter"] == 99
    assert rec.level == "native"
    assert rec.arch_name == h.ctxs[0].arch.name


def test_stop_and_sync_drains_in_flight_messages():
    h = CrHarness(nranks=2, protocol="stop-and-sync")
    sent = {}

    def app(mpi, rank, harness):
        if rank == 0:
            for i in range(5):
                yield from mpi.send({"i": i}, dest=1, tag=1)
            sent["done"] = True
        else:
            yield harness.engine.timeout(0.0)

    # Kick off sends and a checkpoint concurrently.
    for rank, mpi in enumerate(h.apis):
        h.cluster.node(f"n{rank}").spawn(app(mpi, rank, h))
    done = h.protocols[0].request_checkpoint()
    h.engine.run(done)
    # The drain guarantees rank1 ingested all 5 before its dump: they are
    # in its checkpointed unexpected-queue image.
    rec = h.store.peek("testapp", 1, 1)
    assert len(rec.mpi_state["unexpected"]) == 5
    assert rec.mpi_state["recv_count"] == {0: 5}


def test_stop_and_sync_timing_matches_fig3_model():
    for nranks in (1, 2, 4):
        h = CrHarness(nranks=nranks, protocol="stop-and-sync",
                      level="native")
        t0 = h.engine.now
        h.engine.run(h.protocols[0].request_checkpoint())
        elapsed = h.engine.now - t0
        # The closed-form Figure 3 model for an (almost) empty program;
        # protocol rounds through the relay add a small overhead.
        model = native_checkpoint_time(0, nranks)
        assert elapsed == pytest.approx(model, rel=0.12), nranks
        assert elapsed >= model * 0.95


def test_vm_level_faster_than_native():
    times = {}
    for level in ("native", "vm"):
        h = CrHarness(nranks=2, protocol="stop-and-sync", level=level)
        t0 = h.engine.now
        h.engine.run(h.protocols[0].request_checkpoint())
        times[level] = h.engine.now - t0
    assert times["vm"] < times["native"] / 3


def test_chandy_lamport_blocks_less_than_stop_and_sync():
    # Measure how long rank 1's app stays paused under each protocol.
    def paused_time(protocol):
        h = CrHarness(nranks=3, protocol=protocol)
        samples = []

        def sampler():
            while True:
                samples.append(h.ctxs[1].paused)
                yield h.engine.timeout(0.001)

        h.engine.process(sampler())
        h.engine.run(h.protocols[0].request_checkpoint())
        return sum(samples) * 0.001

    blocking = paused_time("stop-and-sync")
    nonblocking = paused_time("chandy-lamport")
    assert nonblocking < blocking / 3


def test_chandy_lamport_records_in_channel_messages():
    h = CrHarness(nranks=2, protocol="chandy-lamport")

    def app(mpi, rank, harness):
        if rank == 0:
            for i in range(30):
                yield from mpi.send({"i": i}, dest=1, tag=1, size=4000)
        else:
            got = 0
            while got < 30:
                yield from mpi.recv(source=0, tag=1)
                got += 1
                yield from harness.safe_point(rank)
            return got

    for rank, mpi in enumerate(h.apis):
        h.cluster.node(f"n{rank}").spawn(app(mpi, rank, h))
    done = h.protocols[1].request_checkpoint()
    h.engine.run(done)
    rec0 = h.store.peek("testapp", 0, 1)
    rec1 = h.store.peek("testapp", 1, 1)
    # Channel state was captured somewhere: rank1 snapshotted before the
    # marker arrived on channel 0->1, so messages between its snapshot and
    # the marker are recorded (or they were already in the unexpected
    # queue image).  Either way nothing is lost:
    recorded = len(rec1.channel_msgs)
    queued = len(rec1.mpi_state["unexpected"])
    consumed = rec1.image[2].get("counter", 0)  # not used by this app
    assert recorded + queued <= 30
    assert recorded >= 0
    # The commit happened and the app kept running during it.
    assert h.store.latest_committed("testapp") == 1


def test_two_sequential_checkpoints_bump_versions():
    h = CrHarness(nranks=2, protocol="stop-and-sync")
    assert h.engine.run(h.protocols[0].request_checkpoint()) == 1
    assert h.engine.run(h.protocols[1].request_checkpoint()) == 2
    assert h.store.committed_versions("testapp") == [1, 2]


def test_concurrent_initiators_coalesce():
    h = CrHarness(nranks=3, protocol="stop-and-sync")
    ev0 = h.protocols[0].request_checkpoint()
    ev2 = h.protocols[2].request_checkpoint()
    h.engine.run(ev0)
    if not ev2.processed:
        h.engine.run(ev2)
    # Both initiators were satisfied by checkpoint version 1 (coalesced).
    assert ev0.value == 1 and ev2.value == 1
    assert h.store.committed_versions("testapp") == [1]


def test_uncoordinated_independent_versions():
    h = CrHarness(nranks=3, protocol="uncoordinated")
    h.engine.run(h.protocols[0].request_checkpoint())
    h.engine.run(h.protocols[0].request_checkpoint())
    h.engine.run(h.protocols[2].request_checkpoint())
    assert h.store.versions_of("testapp", 0) == [0, 1]
    assert h.store.versions_of("testapp", 1) == []
    assert h.store.versions_of("testapp", 2) == [0]
    # No global commit in uncoordinated mode.
    assert h.store.latest_committed("testapp") is None


def test_uncoordinated_periodic_ticker():
    h = CrHarness(nranks=2, protocol="uncoordinated", interval=0.5)
    h.run(until=2.4)
    for rank in range(2):
        assert len(h.store.versions_of("testapp", rank)) >= 3, rank


def test_uncoordinated_dependency_tracking():
    h = CrHarness(nranks=2, protocol="uncoordinated")

    def app(mpi, rank, harness):
        if rank == 0:
            yield from mpi.send("hello", dest=1, tag=1)
        else:
            yield from mpi.recv(source=0, tag=1)

    h.run_app(app, until=1.0)
    # rank1 received a message sent in rank0's interval 0 during its own
    # interval 0.
    assert h.protocols[1].live_deps() == [(0, 0, 0)]
    # Checkpoint rank1: its record carries the dependency log.
    h.engine.run(h.protocols[1].request_checkpoint())
    rec = h.store.peek("testapp", 1, 0)
    assert rec.deps == [(0, 0, 0)]


def test_uncoordinated_piggyback_interval_advances():
    h = CrHarness(nranks=2, protocol="uncoordinated")
    h.engine.run(h.protocols[0].request_checkpoint())  # rank0 -> interval 1

    def app(mpi, rank, harness):
        if rank == 0:
            yield from mpi.send("post-ckpt", dest=1, tag=1)
        else:
            yield from mpi.recv(source=0, tag=1)

    h.run_app(app, until=2.0)
    assert h.protocols[1].live_deps() == [(0, 1, 0)]


def test_uncoordinated_message_logging_charges_disk():
    h = CrHarness(nranks=2, protocol="uncoordinated", logging=True)

    def app(mpi, rank, harness):
        if rank == 0:
            for i in range(10):
                yield from mpi.send(b"x" * 1000, dest=1, tag=1)
        else:
            for _ in range(10):
                yield from mpi.recv(source=0, tag=1)

    h.run_app(app, until=1.0)
    disk0 = h.cluster.node("n1").disk.bytes_written
    h.engine.run(h.protocols[1].request_checkpoint())
    rec = h.store.peek("testapp", 1, 0)
    assert len(rec.msg_log) == 10
    assert h.cluster.node("n1").disk.bytes_written > disk0
