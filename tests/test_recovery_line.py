"""Recovery-line computation on the rollback-dependency graph."""

import pytest

from repro.ckpt import DependencyGraph, compute_recovery_line
from repro.errors import RecoveryLineError


def test_no_messages_latest_checkpoints():
    g = DependencyGraph([0, 1])
    g.record_checkpoint(0)   # ckpt 0 of rank 0
    g.record_checkpoint(1)
    line = compute_recovery_line(g, failed=[0])
    assert line.cut[0] == 0          # failed rank: last stored ckpt
    assert line.cut[1] == 1          # survivor: live state (index 1 == live)
    assert line.discarded_intervals == 0


def test_orphan_message_rolls_back_receiver():
    # rank0 checkpoints, then sends m in interval 1; rank1 receives m in
    # interval 0 and then checkpoints.  rank0 fails -> resumes interval 1,
    # m is re-sent eventually, fine.  But if rank0 had NOT checkpointed,
    # m becomes an orphan and rank1's checkpoint is useless.
    g = DependencyGraph([0, 1])
    # rank0: no checkpoint; sends in interval 0.
    g.record_message(sender=0, send_interval=0, receiver=1, recv_interval=0)
    g.record_checkpoint(1)           # rank1 ckpt 0 (captures the receive)
    line = compute_recovery_line(g, failed=[0])
    # rank0 restarts from scratch; rank1's ckpt 0 contains an orphan
    # receive, so rank1 rolls back to initial state too.
    assert line.cut[0] == -1
    assert line.cut[1] == -1
    assert line.is_initial


def test_consistent_checkpoint_survives():
    g = DependencyGraph([0, 1])
    g.record_message(0, 0, 1, 0)     # sent & received in interval 0
    g.record_checkpoint(0)           # both checkpoint AFTER the exchange
    g.record_checkpoint(1)
    line = compute_recovery_line(g, failed=[0])
    assert line.cut == {0: 0, 1: 1}  # rank1 keeps running (live = index 1)


def test_domino_effect_cascades():
    # The classic zig-zag: each checkpoint is invalidated by a message
    # received before it that was sent after the peer's checkpoint.
    g = DependencyGraph([0, 1])
    for k in range(3):
        # Every checkpoint is taken right after receiving a message the
        # peer sent from *its* post-checkpoint interval: rolling back any
        # checkpoint orphans the receive captured by the previous one.
        g.record_message(1, k, 0, k)           # recv before rank0's ckpt k
        g.record_checkpoint(0)                 # ckpt k of rank 0
        g.record_message(0, k + 1, 1, k)       # sent after 0's ckpt
        g.record_checkpoint(1)                 # ckpt k of rank 1
    line = compute_recovery_line(g, failed=[0])
    # Every checkpoint is orphaned in turn: full domino.
    assert line.is_initial
    with pytest.raises(RecoveryLineError):
        compute_recovery_line(g, failed=[0], allow_initial=False)


def test_partial_rollback_stops_at_consistent_pair():
    g = DependencyGraph([0, 1])
    # Consistent pair of checkpoints (no cross messages around them).
    g.record_checkpoint(0)     # ckpt 0
    g.record_checkpoint(1)     # ckpt 0
    # Then a zig-zag that invalidates everything after.
    g.record_checkpoint(0)                  # ckpt 1 of rank 0
    g.record_message(0, 2, 1, 1)
    g.record_checkpoint(1)                  # ckpt 1 of rank 1
    g.record_message(1, 2, 0, 2)
    line = compute_recovery_line(g, failed=[0])
    # rank0 resumes from ckpt 1 (its interval-2 receive is discarded with
    # the rolled-back execution); the zig-zag forces rank1 back to ckpt 0.
    assert line.cut == {0: 1, 1: 0}
    assert not line.is_initial


def test_survivors_not_rolled_back_without_orphans():
    g = DependencyGraph([0, 1, 2])
    for r in (0, 1, 2):
        g.record_checkpoint(r)
    # Messages all sent & received in old intervals (before checkpoints).
    g.record_message(0, 0, 1, 0)
    g.record_message(1, 0, 2, 0)
    line = compute_recovery_line(g, failed=[2])
    assert line.cut[0] == 1  # live
    assert line.cut[1] == 1  # live
    assert line.cut[2] == 0  # restored from its checkpoint


def test_transitive_rollback_propagation():
    g = DependencyGraph([0, 1, 2])
    # 0 sends (interval 0) to 1; 1 checkpoints; 1 sends (interval 1) to 2;
    # 2 checkpoints.  0 fails with no checkpoint:
    #  -> 1 rolls to initial (orphan from 0)
    #  -> 2's checkpoint recorded a receive sent in 1's interval 1,
    #     which is now rolled back, so 2 rolls to initial too.
    g.record_message(0, 0, 1, 0)
    g.record_checkpoint(1)
    g.record_message(1, 1, 2, 0)
    g.record_checkpoint(2)
    line = compute_recovery_line(g, failed=[0])
    assert line.cut == {0: -1, 1: -1, 2: -1}


def test_multiple_failures():
    g = DependencyGraph([0, 1, 2])
    for r in (0, 1, 2):
        g.record_checkpoint(r)
    line = compute_recovery_line(g, failed=[0, 2])
    assert line.cut[0] == 0
    assert line.cut[2] == 0
    assert line.cut[1] == 1  # live


def test_snapshot_roundtrip():
    g = DependencyGraph([0, 1])
    g.record_checkpoint(0)
    g.record_message(0, 1, 1, 0)
    g2 = DependencyGraph.from_snapshot(g.snapshot())
    assert g2.ckpt_count == g.ckpt_count
    assert g2.deps == g.deps
    line1 = compute_recovery_line(g, failed=[0])
    line2 = compute_recovery_line(g2, failed=[0])
    assert line1.cut == line2.cut


def test_discarded_intervals_counts_lost_work():
    g = DependencyGraph([0, 1])
    g.record_checkpoint(0)
    g.record_checkpoint(0)   # rank 0 has 2 ckpts, current interval 2
    g.record_checkpoint(1)
    # Orphan: rank1 received (interval 0) a message rank0 sent in
    # interval 2 (after its last checkpoint).
    g.record_message(0, 2, 1, 0)
    g.record_checkpoint(1)   # ckpt 1 of rank 1 captures the orphan receive
    line = compute_recovery_line(g, failed=[0])
    # rank0 -> ckpt 1 (resume interval 2); the message it sent in interval
    # 2 is unsent now; rank1 received it in interval 0, so rank1 rolls all
    # the way to initial state.
    assert line.cut[0] == 1
    assert line.cut[1] == -1
    assert line.discarded_intervals == 3  # rank1 lost intervals 0,1,2(live)


# ---------------------------------------------------------------------------
# replica loss: unreachable checkpoints truncate a rank's usable prefix
# (uncoordinated protocol over the replicated store — satellite of the
# repro.store PR; the daemon feeds compute_recovery_line a ckpt_count cut
# down to the restorable prefix, which can domino OTHER ranks further back)
# ---------------------------------------------------------------------------

def test_truncated_prefix_dominoes_the_peer():
    # rank0: ckpts 0 and 1; it sent a message in interval 1 (after ckpt 0,
    # before ckpt 1) that rank1 received and captured in its ckpt 0.
    def graph():
        g = DependencyGraph([0, 1])
        g.record_checkpoint(0)                 # rank0 ckpt 0
        g.record_message(0, 1, 1, 0)           # sent interval 1, recv by 1
        g.record_checkpoint(0)                 # rank0 ckpt 1
        g.record_checkpoint(1)                 # rank1 ckpt 0
        return g

    # All replicas reachable: rank0 resumes after ckpt 1 — the interval-1
    # send is inside it, nothing is orphaned, rank1 keeps its checkpoint.
    line = compute_recovery_line(graph(), failed=[0, 1])
    assert line.cut == {0: 1, 1: 0}

    # Replica loss eats rank0's ckpt 1: the daemon truncates the usable
    # prefix exactly like this, and the SAME dependency log now dominoes —
    # rank0 re-executes interval 1, its message becomes unsent, and the
    # receive captured by rank1's ckpt 0 is an orphan.
    g = graph()
    g.ckpt_count[0] = 1
    line = compute_recovery_line(g, failed=[0, 1])
    assert line.cut == {0: 0, 1: -1}
    assert line.discarded_intervals > 0


def test_hole_in_versions_truncates_not_filters():
    # A reachable checkpoint AFTER an unreachable one must not be used:
    # its interval numbering depends on the missing predecessor, so only
    # the contiguous restorable prefix can anchor a rollback.  Losing the
    # middle checkpoint costs the tail too.
    g = DependencyGraph([0, 1])
    for _ in range(3):
        g.record_checkpoint(0)
    g.record_checkpoint(1)
    g.ckpt_count[0] = 1              # v2 unreachable: v3 is unusable too
    line = compute_recovery_line(g, failed=[0])
    assert line.cut[0] == 0


def test_uncoordinated_restore_truncates_at_unreachable_replicas():
    """End to end through the daemon: the recovery line falls back (and
    dominoes) when a checkpoint's every replica is gone."""
    from repro.apps import ComputeSleep
    from repro.ckpt.protocols.roles import DependencyRollbackPlanner
    from repro.ckpt.storage import CheckpointRecord
    from repro.cluster.spec import ClusterSpec
    from repro.core import StarfishCluster
    from repro.daemon.registry import AppRecord

    sf = StarfishCluster.build(spec=ClusterSpec(nodes=5, seed=0,
                                                replication_factor=2))
    store, engine, cluster = sf.store, sf.engine, sf.cluster

    def put(rank, node_id, version, deps=()):
        rec = CheckpointRecord(
            app_id="app", rank=rank, version=version, level="vm",
            nbytes=1000, image=b"s", arch_name="sparc-sunos",
            taken_at=engine.now, deps=list(deps))
        engine.process(store.write(cluster.nodes[node_id], rec))
        engine.run(until=engine.now + 0.5)   # daemons never go idle

    put(0, "n0", 1)
    put(1, "n1", 1, deps=[(0, 1, 0)])     # recv of rank0's interval-1 send
    # rank0's v2 replica target (ring successor n1) is cut off during the
    # dump: v2 lands with a single copy on n0.
    cluster.myrinet.set_partition(["n0", "n2", "n3", "n4"], ["n1"])
    put(0, "n0", 2)
    cluster.myrinet.clear_partition()
    assert store.peek("app", 0, 2).holder_nodes == ["n0"]

    record = AppRecord(
        app_id="app", owner="t", nprocs=2, program=ComputeSleep, params={},
        ft_policy="restart", ckpt_protocol="uncoordinated", ckpt_level="vm",
        ckpt_interval=None, transport="bip-myrinet", polling=True,
        placement={0: "n0", 1: "n1"})
    daemon = sf.daemons["n2"]
    planner = DependencyRollbackPlanner()

    restore = planner.plan(daemon, record, failed_ranks=[0, 1])
    assert restore["line"] == {0: 1, 1: 0}       # intact: latest ckpts

    # Crash the only holder of v2 (v1 survives on its n1 replica): rank0's
    # usable prefix shrinks to [v1] and the dependency log dominoes rank1
    # all the way back to initial state.
    cluster.crash_node("n0")
    restore = planner.plan(daemon, record, failed_ranks=[0, 1])
    assert restore["line"] == {0: 0, 1: -1}
    assert restore["discarded"] > 0


# -- departed / dynamic ranks ---------------------------------------------


def test_departed_sender_orphans_the_receiver():
    """A rank absent from the cut (departed dynamic rank) never
    re-executes, so any message received from it is unconditionally an
    orphan: the receiver must roll back to before the receive.  (The
    pre-fix code silently *skipped* such dependencies, keeping a
    checkpoint that captures a receive no surviving rank can re-send.)"""
    g = DependencyGraph([0, 1])
    # Rank 2 departed: not in the graph's ranks, but a message it sent in
    # its interval 0 is captured by rank 1's first checkpoint.
    g.record_message(sender=2, send_interval=0, receiver=1, recv_interval=0)
    g.record_checkpoint(1)
    line = compute_recovery_line(g, failed=[0])
    assert line.cut[1] == -1      # the orphan receive invalidates ckpt 0


def test_departed_sender_dominoes_transitively():
    """The departed-sender rollback propagates like any other orphan."""
    g = DependencyGraph([0, 1])
    g.record_message(2, 0, 1, 0)   # departed rank 2 -> rank 1, interval 0
    g.record_checkpoint(1)         # rank1 ckpt 0 captures that receive
    g.record_message(1, 1, 0, 0)   # rank1 sends post-ckpt -> rank 0
    g.record_checkpoint(0)         # rank0 ckpt 0 captures *that* receive
    line = compute_recovery_line(g, failed=[1])
    # rank1 rolls to before its receive from the departed rank; its
    # interval-1 send becomes an orphan in turn, dominoing rank0.
    assert line.cut == {0: -1, 1: -1}
    assert line.is_initial


def test_departed_receiver_dep_is_inert():
    """A dependency whose *receiver* departed rolls back nobody — there
    is no state left to make inconsistent."""
    g = DependencyGraph([0, 1])
    g.record_checkpoint(0)
    g.record_checkpoint(1)
    g.record_message(sender=0, send_interval=0, receiver=7, recv_interval=0)
    line = compute_recovery_line(g, failed=[0])
    assert line.cut == {0: 0, 1: 1}


def test_departed_sender_with_receiver_already_rolled_back_is_stable():
    """If the receiver is already at/below the receive interval the
    departed-sender rule changes nothing (no infinite re-lowering)."""
    g = DependencyGraph([0, 1])
    g.record_message(2, 3, 1, 1)
    g.record_checkpoint(1)
    line = compute_recovery_line(g, failed=[1])
    # Failed rank1 resumes from its stored checkpoint (x=1); the receive
    # happened in interval 1, which that checkpoint does *not* capture
    # (1 <= 1 is no orphan), so the cut keeps the stored checkpoint.
    assert line.cut[1] == 0
