"""Metrics snapshots and the tracing facility."""

import pytest

from repro.apps import ComputeSleep
from repro.core import AppSpec, CheckpointConfig, FaultPolicy, StarfishCluster
from repro.core.metrics import ClusterMetrics
from repro.sim import Engine
from repro.sim.trace import Tracer


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------

def test_engine_records_events_when_tracing():
    eng = Engine(trace=True)

    def proc():
        yield eng.timeout(1, name="tick")
        yield eng.timeout(2, name="tock")

    eng.run(eng.process(proc()))
    names = [r.name for r in eng.tracer.events if r.name]
    assert "tick" in names and "tock" in names
    kinds = {r.kind for r in eng.tracer.events}
    assert "Timeout" in kinds and "Process" in kinds


def test_engine_no_tracer_by_default():
    assert Engine().tracer is None


def test_tracer_spans():
    tr = Tracer()
    tr.span_start("mpi_send", key=1, now=0.0, size=64)
    span = tr.span_end("mpi_send", key=1, now=0.002)
    assert span.duration == pytest.approx(0.002)
    assert span.attrs == {"size": 64}
    assert tr.spans_by_layer() == {"mpi_send": [span]}
    # Unmatched end is harmless.
    assert tr.span_end("mpi_send", key=99, now=1.0) is None
    tr.clear()
    assert tr.spans == [] and tr.events == []


def test_span_duration_requires_end():
    from repro.sim.trace import Span
    span = Span(layer="x", start=1.0)
    with pytest.raises(ValueError):
        _ = span.duration


def test_tracer_ring_buffer_caps_memory():
    tr = Tracer(max_events=10)
    eng = Engine()
    for i in range(25):
        tr.record(float(i), eng.timeout(0, name=f"e{i}"))
    assert len(tr.events) == 10
    assert tr.events_dropped == 15
    assert tr.events[0].name == "e15"        # oldest rotated out
    assert tr.events[-1].name == "e24"


def test_tracer_rejects_bad_capacity():
    with pytest.raises(ValueError):
        Tracer(max_events=0)


def test_open_spans_surface_leaks():
    tr = Tracer()
    tr.span_start("vni", key=2, now=1.0)
    tr.span_start("mpi", key=1, now=0.5)
    tr.span_end("mpi", key=1, now=0.7)
    leaked = tr.open_spans()
    assert [s.layer for s in leaked] == ["vni"]
    # clear() must return (not swallow) still-open spans.
    assert tr.clear() == leaked
    assert tr.open_spans() == [] and tr.spans == []
    assert tr.events_dropped == 0


def test_engine_traced_run_counts_drops():
    eng = Engine(trace=True)
    eng.tracer = Tracer(max_events=5)

    def proc():
        for _ in range(20):
            yield eng.timeout(0.1)

    eng.run(eng.process(proc()))
    assert len(eng.tracer.events) == 5
    assert eng.tracer.events_dropped > 0
    assert eng.metrics.collect()["sim.trace.events_dropped"] == \
        eng.tracer.events_dropped


# ---------------------------------------------------------------------------
# ClusterMetrics
# ---------------------------------------------------------------------------

def test_snapshot_reflects_running_app():
    sf = StarfishCluster.build(nodes=3)
    handle = sf.submit(AppSpec(
        program=ComputeSleep, nprocs=2,
        params={"steps": 200, "step_time": 0.02},
        ft_policy=FaultPolicy.RESTART,
        checkpoint=CheckpointConfig(protocol="stop-and-sync", level="vm",
                                    interval=0.5)))
    sf.engine.run(until=sf.engine.now + 1.5)
    snap = ClusterMetrics(sf).snapshot()
    assert snap.nodes_up == 3 and snap.daemons == 3
    assert snap.group_epoch is not None
    app = snap.apps[0]
    assert app.app_id == handle.app_id
    assert app.status == "running"
    assert app.ckpt_protocol == "stop-and-sync"
    assert app.committed_line is not None
    assert all(n > 0 for n in app.steps_completed.values())
    assert snap.store_writes >= 2
    eth = next(f for f in snap.fabrics if f.name == "tcp-ethernet")
    assert eth.by_kind.get("control", 0) > 0
    assert eth.by_kind.get("checkpoint/restart", 0) > 0


def test_snapshot_counts_crash_effects():
    sf = StarfishCluster.build(nodes=3)
    sf.crash_node("n2")
    sf.engine.run(until=sf.engine.now + 2.0)
    snap = ClusterMetrics(sf).snapshot()
    assert snap.nodes_up == 2
    assert snap.daemons == 2


def test_registry_latency_histograms_fill_under_collectives():
    from repro.apps import MonteCarloPi
    sf = StarfishCluster.build(nodes=2)
    sf.run(AppSpec(program=MonteCarloPi, nprocs=2,
                   params={"shots": 2000}))
    reg = sf.engine.metrics
    series = reg.series("mpi.collective.latency_seconds")
    assert series, "no collective latency recorded"
    assert sum(inst.count for _l, inst in series) > 0
    assert all(inst.sum >= 0 for _l, inst in series)
    p2p = reg.series("mpi.p2p.latency_seconds", op="send")
    assert p2p and p2p[0][1].count > 0
    # Fast path carried the data frames.
    assert reg.sum("net.frames_sent", fabric="bip-myrinet", kind="data") > 0


def test_format_report_mentions_everything():
    sf = StarfishCluster.build(nodes=2)
    handle = sf.submit(AppSpec(program=ComputeSleep, nprocs=2,
                               params={"steps": 3, "step_time": 0.01}))
    sf.run_to_completion(handle)
    report = ClusterMetrics(sf).format_report()
    assert "2/2 nodes up" in report
    assert handle.app_id in report
    assert "tcp-ethernet" in report and "bip-myrinet" in report
    assert "done" in report
