"""Metrics snapshots and the tracing facility."""

import pytest

from repro.apps import ComputeSleep
from repro.core import AppSpec, CheckpointConfig, FaultPolicy, StarfishCluster
from repro.core.metrics import ClusterMetrics
from repro.sim import Engine
from repro.sim.trace import Tracer


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------

def test_engine_records_events_when_tracing():
    eng = Engine(trace=True)

    def proc():
        yield eng.timeout(1, name="tick")
        yield eng.timeout(2, name="tock")

    eng.run(eng.process(proc()))
    names = [r.name for r in eng.tracer.events if r.name]
    assert "tick" in names and "tock" in names
    kinds = {r.kind for r in eng.tracer.events}
    assert "Timeout" in kinds and "Process" in kinds


def test_engine_no_tracer_by_default():
    assert Engine().tracer is None


def test_tracer_spans():
    tr = Tracer()
    tr.span_start("mpi_send", key=1, now=0.0, size=64)
    span = tr.span_end("mpi_send", key=1, now=0.002)
    assert span.duration == pytest.approx(0.002)
    assert span.attrs == {"size": 64}
    assert tr.spans_by_layer() == {"mpi_send": [span]}
    # Unmatched end is harmless.
    assert tr.span_end("mpi_send", key=99, now=1.0) is None
    tr.clear()
    assert tr.spans == [] and tr.events == []


def test_span_duration_requires_end():
    from repro.sim.trace import Span
    span = Span(layer="x", start=1.0)
    with pytest.raises(ValueError):
        _ = span.duration


# ---------------------------------------------------------------------------
# ClusterMetrics
# ---------------------------------------------------------------------------

def test_snapshot_reflects_running_app():
    sf = StarfishCluster.build(nodes=3)
    handle = sf.submit(AppSpec(
        program=ComputeSleep, nprocs=2,
        params={"steps": 200, "step_time": 0.02},
        ft_policy=FaultPolicy.RESTART,
        checkpoint=CheckpointConfig(protocol="stop-and-sync", level="vm",
                                    interval=0.5)))
    sf.engine.run(until=sf.engine.now + 1.5)
    snap = ClusterMetrics(sf).snapshot()
    assert snap.nodes_up == 3 and snap.daemons == 3
    assert snap.group_epoch is not None
    app = snap.apps[0]
    assert app.app_id == handle.app_id
    assert app.status == "running"
    assert app.ckpt_protocol == "stop-and-sync"
    assert app.committed_line is not None
    assert all(n > 0 for n in app.steps_completed.values())
    assert snap.store_writes >= 2
    eth = next(f for f in snap.fabrics if f.name == "tcp-ethernet")
    assert eth.by_kind.get("control", 0) > 0
    assert eth.by_kind.get("checkpoint/restart", 0) > 0


def test_snapshot_counts_crash_effects():
    sf = StarfishCluster.build(nodes=3)
    sf.crash_node("n2")
    sf.engine.run(until=sf.engine.now + 2.0)
    snap = ClusterMetrics(sf).snapshot()
    assert snap.nodes_up == 2
    assert snap.daemons == 2


def test_format_report_mentions_everything():
    sf = StarfishCluster.build(nodes=2)
    handle = sf.submit(AppSpec(program=ComputeSleep, nprocs=2,
                               params={"steps": 3, "step_time": 0.01}))
    sf.run_to_completion(handle)
    report = ClusterMetrics(sf).format_report()
    assert "2/2 nodes up" in report
    assert handle.app_id in report
    assert "tcp-ethernet" in report and "bip-myrinet" in report
    assert "done" in report
