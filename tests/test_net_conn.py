"""Unit tests for reliable connections and local pipes."""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.errors import ConnectionClosed
from repro.net import Connection, Listener
from repro.net.conn import LocalPipe


def setup_listener(cluster, node="n1", port="svc"):
    nic = cluster.node(node).nic("tcp-ethernet")
    return Listener(cluster.engine, nic, port)


def connect(cluster, src="n0", dst="n1", port="svc"):
    nic = cluster.node(src).nic("tcp-ethernet")
    return Connection.connect(cluster.engine, nic, dst, port)


def test_connect_and_exchange():
    cluster = Cluster.build(nodes=2)
    eng = cluster.engine
    listener = setup_listener(cluster)

    def server():
        conn = yield listener.accept()
        msg = yield conn.recv()
        yield from conn.send(("echo", msg))

    def client():
        conn = yield from connect(cluster)
        yield from conn.send("hello", size=5)
        reply = yield conn.recv()
        return reply

    eng.process(server())
    assert eng.run(eng.process(client())) == ("echo", "hello")


def test_messages_arrive_in_order():
    cluster = Cluster.build(nodes=2)
    eng = cluster.engine
    listener = setup_listener(cluster)
    n = 20

    def server():
        conn = yield listener.accept()
        got = []
        for _ in range(n):
            got.append((yield conn.recv()))
        return got

    def client():
        conn = yield from connect(cluster)
        for i in range(n):
            yield from conn.send(i)

    p = eng.process(server())
    eng.process(client())
    assert eng.run(p) == list(range(n))


def test_reliable_under_heavy_loss():
    cluster = Cluster.build(spec=ClusterSpec(nodes=2, seed=3, loss_prob=0.3))
    eng = cluster.engine
    listener = setup_listener(cluster)
    n = 15

    def server():
        conn = yield listener.accept()
        got = []
        for _ in range(n):
            got.append((yield conn.recv()))
        return got

    def client():
        conn = yield from connect(cluster)
        for i in range(n):
            yield from conn.send(i)

    p = eng.process(server())
    eng.process(client())
    assert eng.run(p) == list(range(n))
    assert cluster.ethernet.frames_dropped > 0  # loss actually happened


def test_bidirectional_traffic():
    cluster = Cluster.build(nodes=2)
    eng = cluster.engine
    listener = setup_listener(cluster)

    def server():
        conn = yield listener.accept()
        for i in range(5):
            msg = yield conn.recv()
            yield from conn.send(msg * 2)

    def client():
        conn = yield from connect(cluster)
        out = []
        for i in range(5):
            yield from conn.send(i)
            out.append((yield conn.recv()))
        return out

    eng.process(server())
    assert eng.run(eng.process(client())) == [0, 2, 4, 6, 8]


def test_close_propagates_fin():
    cluster = Cluster.build(nodes=2)
    eng = cluster.engine
    listener = setup_listener(cluster)

    def server():
        conn = yield listener.accept()
        yield from conn.close()

    def client():
        conn = yield from connect(cluster)
        with pytest.raises(ConnectionClosed):
            yield conn.recv()
        return conn.closed

    eng.process(server())
    assert eng.run(eng.process(client()))


def test_peer_crash_closes_connection():
    cluster = Cluster.build(nodes=2)
    eng = cluster.engine
    listener = setup_listener(cluster)

    def server():
        conn = yield listener.accept()
        yield conn.recv()   # hangs forever; node will crash

    def client():
        conn = yield from connect(cluster)
        yield eng.timeout(0.01)
        # Crash OUR node: our rx port closes, conn tears down.
        cluster.crash_node("n0")
        with pytest.raises(ConnectionClosed):
            yield conn.recv()
        return True

    eng.process(server())
    assert eng.run(eng.process(client()))


def test_send_on_closed_connection_raises():
    cluster = Cluster.build(nodes=2)
    eng = cluster.engine
    listener = setup_listener(cluster)

    def client():
        conn = yield from connect(cluster)
        yield from conn.close()
        with pytest.raises(ConnectionClosed):
            yield from conn.send("too late")
        return True

    def server():
        yield listener.accept()

    eng.process(server())
    assert eng.run(eng.process(client()))


def test_two_clients_same_listener():
    cluster = Cluster.build(nodes=3)
    eng = cluster.engine
    listener = setup_listener(cluster, node="n2")

    def server():
        seen = []
        for _ in range(2):
            conn = yield listener.accept()
            msg = yield conn.recv()
            seen.append(msg)
        return sorted(seen)

    def client(src):
        conn = yield from Connection.connect(
            eng, cluster.node(src).nic("tcp-ethernet"), "n2", "svc")
        yield from conn.send(src)

    p = eng.process(server())
    eng.process(client("n0"))
    eng.process(client("n1"))
    assert eng.run(p) == ["n0", "n1"]


def test_connection_survives_transient_partition():
    cluster = Cluster.build(nodes=2)
    eng = cluster.engine
    listener = setup_listener(cluster)

    def server():
        conn = yield listener.accept()
        got = []
        for _ in range(3):
            got.append((yield conn.recv()))
        return got

    def client():
        conn = yield from connect(cluster)
        yield from conn.send(0)
        # Partition, send into the void, heal: ARQ must recover.
        cluster.ethernet.set_partition(["n0"], ["n1"])
        yield from conn.send(1)
        yield eng.timeout(0.05)
        cluster.ethernet.clear_partition()
        yield from conn.send(2)

    p = eng.process(server())
    eng.process(client())
    assert eng.run(p) == [0, 1, 2]


# ---------------------------------------------------------------------------
# LocalPipe
# ---------------------------------------------------------------------------

def test_local_pipe_roundtrip():
    from repro.sim import Engine
    eng = Engine()
    pipe = LocalPipe(eng, name="dmn-app")

    def daemon():
        msg = yield pipe.a.recv()
        yield from pipe.a.send(("ack", msg))

    def app():
        yield from pipe.b.send("register", kind="configuration")
        return (yield pipe.b.recv())

    eng.process(daemon())
    assert eng.run(eng.process(app())) == ("ack", "register")
    assert pipe.by_kind["configuration"] == 1


def test_local_pipe_close_fails_reader():
    from repro.sim import Engine
    eng = Engine()
    pipe = LocalPipe(eng)

    def reader():
        with pytest.raises(ConnectionClosed):
            yield pipe.b.recv()
        return True

    def closer():
        yield eng.timeout(1)
        pipe.a.close()

    p = eng.process(reader())
    eng.process(closer())
    assert eng.run(p)
    # send after close raises too (on first iteration of the generator)
    with pytest.raises(ConnectionClosed):
        next(pipe.a.send("x"))


def test_local_pipe_latency_is_local_hop():
    from repro.calibration import LOCAL_TCP_HOP
    from repro.sim import Engine
    eng = Engine()
    pipe = LocalPipe(eng)

    def sender():
        yield from pipe.a.send("m")

    def receiver():
        yield pipe.b.recv()
        return eng.now

    eng.process(sender())
    assert eng.run(eng.process(receiver())) == pytest.approx(LOCAL_TCP_HOP)


def test_connect_timeout_to_dead_port_raises_typed_error():
    from repro.errors import RequestTimeout
    cluster = Cluster.build(nodes=2)
    eng = cluster.engine

    def client():
        nic = cluster.node("n0").nic("tcp-ethernet")
        try:
            yield from Connection.connect(eng, nic, "n1", "nobody-listens",
                                          timeout=0.5)
        except RequestTimeout as exc:
            return ("timeout", eng.now, str(exc))
        return "connected"

    kind, t, msg = eng.run(eng.process(client()))
    assert kind == "timeout"
    assert t == pytest.approx(0.5, abs=0.05)
    assert "nobody-listens" in msg


def test_connect_without_timeout_still_retries_forever():
    # Legacy behaviour preserved: no deadline means keep retransmitting.
    cluster = Cluster.build(nodes=2)
    eng = cluster.engine
    listener = setup_listener(cluster)
    accepted = []

    def server():
        yield eng.timeout(0.2)       # listener exists, server is just slow
        conn = yield listener.accept()
        accepted.append(conn)

    def client():
        conn = yield from connect(cluster)
        return conn

    eng.process(server())
    assert eng.run(eng.process(client())) is not None


def test_abort_tears_down_without_fin():
    cluster = Cluster.build(nodes=2)
    eng = cluster.engine
    listener = setup_listener(cluster)

    def server():
        conn = yield listener.accept()
        yield conn.recv()

    def client():
        conn = yield from connect(cluster)
        conn.abort()
        assert conn.closed
        with pytest.raises(ConnectionClosed):
            yield from conn.send("x")
        return True

    eng.process(server())
    assert eng.run(eng.process(client())) is True
