"""Unit tests for the discrete-event kernel: engine, events, processes."""

import pytest

from repro.errors import Interrupt, SimulationError
from repro.sim import AllOf, AnyOf, Engine, Event


def test_clock_starts_at_zero():
    assert Engine().now == 0.0


def test_timeout_advances_clock():
    eng = Engine()

    def proc():
        yield eng.timeout(2.5)
        return eng.now

    p = eng.process(proc())
    assert eng.run(p) == 2.5
    assert eng.now == 2.5


def test_timeout_value_passthrough():
    eng = Engine()

    def proc():
        got = yield eng.timeout(1.0, value="hello")
        return got

    assert eng.run(eng.process(proc())) == "hello"


def test_negative_timeout_rejected():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.timeout(-1)


def test_process_return_value():
    eng = Engine()

    def proc():
        yield eng.timeout(0)
        return 42

    assert eng.run(eng.process(proc())) == 42


def test_process_requires_generator():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.process(lambda: None)  # type: ignore[arg-type]


def test_processes_compose_by_yielding():
    eng = Engine()

    def child():
        yield eng.timeout(3)
        return "child-done"

    def parent():
        result = yield eng.process(child())
        return result, eng.now

    assert eng.run(eng.process(parent())) == ("child-done", 3)


def test_same_time_events_fifo_order():
    eng = Engine()
    order = []

    def make(i):
        def proc():
            yield eng.timeout(1.0)
            order.append(i)
        return proc

    for i in range(10):
        eng.process(make(i)())
    eng.run()
    assert order == list(range(10))


def test_determinism_across_runs():
    def scenario():
        eng = Engine(seed=7)
        log = []

        def worker(i):
            for k in range(3):
                dt = float(eng.rng.stream("w").integers(1, 5))
                yield eng.timeout(dt)
                log.append((eng.now, i, k))

        for i in range(4):
            eng.process(worker(i))
        eng.run()
        return log

    assert scenario() == scenario()


def test_run_until_time():
    eng = Engine()
    ticks = []

    def ticker():
        while True:
            yield eng.timeout(1)
            ticks.append(eng.now)

    eng.process(ticker())
    eng.run(until=3.5)
    assert ticks == [1, 2, 3]
    assert eng.now == 3.5


def test_run_until_event_in_past_raises():
    eng = Engine()
    eng.process(iter_timeout(eng, 5))
    eng.run(until=5)
    with pytest.raises(SimulationError):
        eng.run(until=1)


def iter_timeout(eng, dt):
    yield eng.timeout(dt)


def test_run_until_untriggerable_event_raises():
    eng = Engine()
    ev = eng.event()
    with pytest.raises(SimulationError, match="ran dry"):
        eng.run(until=ev)


def test_event_succeed_once_only():
    eng = Engine()
    ev = eng.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_requires_exception():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.event().fail("not an exception")  # type: ignore[arg-type]


def test_failed_event_raises_in_waiter():
    eng = Engine()
    ev = eng.event()

    def failer():
        yield eng.timeout(1)
        ev.fail(ValueError("boom"))

    def waiter():
        with pytest.raises(ValueError, match="boom"):
            yield ev
        return "handled"

    eng.process(failer())
    assert eng.run(eng.process(waiter())) == "handled"


def test_unhandled_failed_event_crashes_engine():
    eng = Engine()

    def failer():
        yield eng.timeout(1)
        eng.event().fail(RuntimeError("nobody listens"))

    eng.process(failer())
    with pytest.raises(RuntimeError, match="nobody listens"):
        eng.run()


def test_process_exception_propagates_to_run():
    eng = Engine()

    def bad():
        yield eng.timeout(1)
        raise KeyError("oops")

    p = eng.process(bad())
    with pytest.raises(KeyError):
        eng.run(p)


def test_yielding_non_event_is_error():
    eng = Engine()

    def bad():
        yield 42

    with pytest.raises(SimulationError, match="yield"):
        eng.run(eng.process(bad()))


def test_yield_already_processed_event():
    eng = Engine()
    ev = eng.event()
    ev.succeed("early")

    def late():
        yield eng.timeout(5)
        got = yield ev
        return got

    eng.run()  # processes ev
    assert ev.processed
    p = eng.process(late())
    assert eng.run(p) == "early"


def test_any_of_returns_first():
    eng = Engine()

    def proc():
        t1, t2 = eng.timeout(1, value="fast"), eng.timeout(2, value="slow")
        done = yield (t1 | t2)
        return list(done.values()), eng.now

    values, now = eng.run(eng.process(proc()))
    assert values == ["fast"]
    assert now == 1


def test_all_of_waits_for_all():
    eng = Engine()

    def proc():
        t1, t2 = eng.timeout(1, value="a"), eng.timeout(2, value="b")
        done = yield (t1 & t2)
        return sorted(done.values()), eng.now

    assert eng.run(eng.process(proc())) == (["a", "b"], 2)


def test_all_of_empty_triggers_immediately():
    eng = Engine()

    def proc():
        yield AllOf(eng, [])
        return eng.now

    assert eng.run(eng.process(proc())) == 0


def test_condition_failure_propagates():
    eng = Engine()
    ev = eng.event()

    def failer():
        yield eng.timeout(1)
        ev.fail(OSError("disk"))

    def waiter():
        with pytest.raises(OSError):
            yield AnyOf(eng, [ev, eng.timeout(10)])
        return True

    eng.process(failer())
    assert eng.run(eng.process(waiter()))


def test_interrupt_delivers_cause():
    eng = Engine()

    def victim():
        try:
            yield eng.timeout(100)
        except Interrupt as exc:
            return ("interrupted", exc.cause, eng.now)

    def attacker(v):
        yield eng.timeout(2)
        v.interrupt("node-crash")

    v = eng.process(victim())
    eng.process(attacker(v))
    assert eng.run(v) == ("interrupted", "node-crash", 2)


def test_interrupt_dead_process_is_error():
    eng = Engine()

    def victim():
        yield eng.timeout(1)

    v = eng.process(victim())
    eng.run()
    with pytest.raises(SimulationError):
        v.interrupt()


def test_self_interrupt_is_error():
    eng = Engine()

    def proc():
        me = eng.active_process
        with pytest.raises(SimulationError):
            me.interrupt()
        yield eng.timeout(0)
        return True

    assert eng.run(eng.process(proc()))


def test_double_interrupt_delivered_in_order():
    eng = Engine()
    causes = []

    def victim():
        for _ in range(2):
            try:
                yield eng.timeout(100)
            except Interrupt as exc:
                causes.append(exc.cause)
        yield eng.timeout(0)

    def attacker(v):
        yield eng.timeout(1)
        v.interrupt("first")
        v.interrupt("second")

    v = eng.process(victim())
    eng.process(attacker(v))
    eng.run(v)
    assert causes == ["first", "second"]


def test_interrupted_process_can_rewait_event():
    eng = Engine()
    ev = eng.event()

    def victim():
        try:
            yield ev
        except Interrupt:
            pass
        got = yield ev          # re-wait for the same event
        return got

    def driver(v):
        yield eng.timeout(1)
        v.interrupt()
        yield eng.timeout(1)
        ev.succeed("finally")

    v = eng.process(victim())
    eng.process(driver(v))
    assert eng.run(v) == "finally"


def test_is_alive_transitions():
    eng = Engine()

    def proc():
        yield eng.timeout(1)

    p = eng.process(proc())
    assert p.is_alive
    eng.run()
    assert not p.is_alive


def test_events_processed_counter_increases():
    eng = Engine()

    def proc():
        yield eng.timeout(1)
        yield eng.timeout(1)

    eng.run(eng.process(proc()))
    assert eng.events_processed >= 3


def test_peek_reports_next_event_time():
    eng = Engine()
    assert eng.peek() == float("inf")
    eng.timeout(4)
    assert eng.peek() == 4
