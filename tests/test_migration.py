"""Process migration via checkpoint/restart (paper §3.2.1)."""

import pytest

from repro.apps import ComputeSleep, Jacobi1D
from repro.core import AppSpec, CheckpointConfig, FaultPolicy, StarfishCluster
from repro.daemon import AppStatus


def checkpointed_app(sf, nprocs=2, steps=60, protocol="stop-and-sync"):
    handle = sf.submit(AppSpec(
        program=ComputeSleep, nprocs=nprocs,
        params={"steps": steps, "step_time": 0.05},
        ft_policy=FaultPolicy.RESTART,
        checkpoint=CheckpointConfig(protocol=protocol, level="vm",
                                    interval=0.5),
        placement={r: f"n{r}" for r in range(nprocs)}))
    sf.engine.run(until=sf.engine.now + 1.3)
    assert sf.store.latest_committed(handle.app_id) is not None
    return handle


def test_migrate_moves_rank_and_completes():
    sf = StarfishCluster.build(nodes=3)
    handle = checkpointed_app(sf)
    sf.migrate(handle, rank=1, target_node="n2")
    results = sf.run_to_completion(handle, timeout=300)
    assert results == {0: 60, 1: 60}
    record = handle._record()
    assert record.placement[1] == "n2"
    assert record.restarts == 1       # migration = rollback + re-place
    assert record.world_version >= 1


def test_migrate_preserves_progress():
    sf = StarfishCluster.build(nodes=3)
    handle = checkpointed_app(sf, steps=40)
    t0 = sf.engine.now
    sf.migrate(handle, rank=1, target_node="n2")
    sf.run_to_completion(handle, timeout=300)
    # Progress up to the recovery line is not redone: finishing takes less
    # time than a full 40 x 0.05 = 2.0s rerun would.
    assert sf.engine.now - t0 < 1.9


def test_migrate_to_same_node_is_typed_error():
    from repro.errors import PlacementError
    sf = StarfishCluster.build(nodes=3)
    handle = checkpointed_app(sf)
    with pytest.raises(PlacementError, match="already"):
        sf.migrate(handle, rank=1, target_node="n1")   # already there
    sf.engine.run(until=sf.engine.now + 1.0)
    assert handle._record().restarts == 0      # nothing was cast
    sf.run_to_completion(handle, timeout=300)


def test_migrate_validates_target_up_front():
    """Bad migrations fail with a typed PlacementError before any cast:
    unknown node, dead node, unknown rank (paper §3.2.1 hardening)."""
    from repro.errors import PlacementError
    sf = StarfishCluster.build(nodes=3)
    handle = checkpointed_app(sf, steps=200)   # outlive the churn below
    with pytest.raises(PlacementError, match="unknown node"):
        sf.migrate(handle, rank=1, target_node="n99")
    sf.cluster.crash_node("n2")
    with pytest.raises(PlacementError, match="down"):
        sf.migrate(handle, rank=1, target_node="n2")
    sf.cluster.recover_node("n2")
    sf.engine.run(until=sf.engine.now + 2.0)   # rejoin the group
    with pytest.raises(PlacementError, match="no rank"):
        sf.migrate(handle, rank=9, target_node="n2")
    # None of the rejected calls disturbed the app.
    assert handle._record().restarts == 0
    sf.run_to_completion(handle, timeout=300)


def test_migrate_without_checkpoints_restarts_from_scratch():
    sf = StarfishCluster.build(nodes=3)
    handle = sf.submit(AppSpec(
        program=ComputeSleep, nprocs=2,
        params={"steps": 10, "step_time": 0.05},
        ft_policy=FaultPolicy.RESTART,
        placement={0: "n0", 1: "n1"}))
    sf.engine.run(until=sf.engine.now + 0.3)
    sf.migrate(handle, rank=0, target_node="n2")
    results = sf.run_to_completion(handle, timeout=300)
    assert results == {0: 10, 1: 10}
    assert handle._record().placement[0] == "n2"


def test_migrate_via_ascii_client():
    sf = StarfishCluster.build(nodes=3)
    handle = checkpointed_app(sf)

    def session():
        client = sf.client()
        c = yield from client.connect()
        yield from c.login("admin", "adminpw", mgmt=True)
        reply = yield from c.command(
            f"MIGRATE {handle.app_id} 1 n2")
        bad_rank = yield from c.command(f"MIGRATE {handle.app_id} 9 n2")
        bad_node = yield from c.command(f"MIGRATE {handle.app_id} 0 nope")
        yield from c.close()
        return reply, bad_rank, bad_node

    proc = sf.engine.process(session())
    sf.engine.run(until=sf.engine.now + 10.0)
    reply, bad_rank, bad_node = proc.value
    assert reply.startswith("OK migrating")
    assert bad_rank.startswith("ERR no rank")
    assert bad_node.startswith("ERR unknown node")
    results = sf.run_to_completion(handle, timeout=300)
    assert results == {0: 60, 1: 60}
    assert handle._record().placement[1] == "n2"


def test_migrate_tightly_coupled_app():
    sf = StarfishCluster.build(nodes=4)
    handle = sf.submit(AppSpec(
        program=Jacobi1D, nprocs=3,
        params={"n": 255, "iterations": 200, "iters_per_step": 10,
                "compute_ns_per_cell": 200_000},
        ft_policy=FaultPolicy.RESTART,
        checkpoint=CheckpointConfig(protocol="chandy-lamport", level="vm",
                                    interval=1.0),
        placement={0: "n0", 1: "n1", 2: "n2"}))
    sf.engine.run(until=sf.engine.now + 2.5)
    sf.migrate(handle, rank=2, target_node="n3")
    results = sf.run_to_completion(handle, timeout=600)
    iters, _res, _tot = results[0]
    assert iters == 200
    assert handle._record().placement[2] == "n3"
