"""The command-line interface."""

import pytest

from repro.cli import main


def test_demo(capsys):
    assert main(["demo", "--nodes", "2", "--shots", "4000"]) == 0
    out = capsys.readouterr().out
    assert "pi ~ 3." in out
    assert "2-node Starfish cluster" in out


def test_status(capsys):
    assert main(["status", "--nodes", "2", "--seconds", "2.0"]) == 0
    out = capsys.readouterr().out
    assert "2/2 nodes up" in out
    assert "stop-and-sync" in out


def test_rtt(capsys):
    assert main(["rtt", "--reps", "3"]) == 0
    out = capsys.readouterr().out
    assert "bip-myrinet" in out
    assert "us" in out


def test_examples_listing(capsys):
    assert main(["examples"]) == 0
    out = capsys.readouterr().out
    assert "quickstart.py" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
