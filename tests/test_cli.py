"""The command-line interface."""

import pytest

from repro.cli import main


def test_demo(capsys):
    assert main(["demo", "--nodes", "2", "--shots", "4000"]) == 0
    out = capsys.readouterr().out
    assert "pi ~ 3." in out
    assert "2-node Starfish cluster" in out


def test_status(capsys):
    assert main(["status", "--nodes", "2", "--seconds", "2.0"]) == 0
    out = capsys.readouterr().out
    assert "2/2 nodes up" in out
    assert "stop-and-sync" in out


def test_metrics_text(capsys):
    assert main(["metrics", "--nodes", "2", "--seconds", "1.0"]) == 0
    out = capsys.readouterr().out
    assert "net.frames_sent{fabric=tcp-ethernet,kind=control}" in out
    assert "sim.events_processed" in out
    assert "gcs.views{node=n0}" in out


def test_metrics_prometheus(capsys):
    assert main(["metrics", "--nodes", "2", "--seconds", "1.0",
                 "--format", "prom"]) == 0
    out = capsys.readouterr().out
    assert "# TYPE net_frames_sent counter" in out
    assert 'net_frames_sent{fabric="tcp-ethernet",kind="control"}' in out
    assert 'mpi_p2p_latency_seconds_bucket' in out


def test_trace_chrome_export(tmp_path, capsys):
    import json
    out_path = tmp_path / "trace.json"
    assert main(["trace", "--nodes", "2", "--seconds", "1.0",
                 "--chrome", str(out_path)]) == 0
    assert "wrote" in capsys.readouterr().out
    doc = json.loads(out_path.read_text())
    events = doc["traceEvents"]
    assert len(events) > 10
    assert all({"name", "ph", "pid", "tid"} <= set(e) for e in events)
    assert any(e["ph"] == "i" for e in events)


def test_rtt(capsys):
    assert main(["rtt", "--reps", "3"]) == 0
    out = capsys.readouterr().out
    assert "bip-myrinet" in out
    assert "us" in out


def test_examples_listing(capsys):
    assert main(["examples"]) == 0
    out = capsys.readouterr().out
    assert "quickstart.py" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_store_what_flag_removed(capsys):
    # --what had its one-release DeprecationWarning window; it now fails
    # fast (before any cluster is built) and points at the subcommands.
    assert main(["store", "--nodes", "3", "--what", "placement"]) == 2
    err = capsys.readouterr().err
    assert "--what has been removed" in err
    for section in ("placement", "replica-map", "repair", "tiers"):
        assert section in err
