"""Helpers to run multi-rank MPI programs in tests without the full
Starfish runtime: one MpiApi per rank on its own node."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.cluster import Cluster
from repro.mpi import MpiApi, MpiEndpoint


def make_world(nprocs: int, seed: int = 0, transport: str = "bip-myrinet",
               polling: bool = True, app_id: str = "test"):
    """Returns (cluster, [MpiApi per rank])."""
    cluster = Cluster.build(nodes=nprocs, seed=seed)
    book: Dict[int, tuple] = {}
    apis = []
    for rank in range(nprocs):
        ep = MpiEndpoint(cluster.engine, cluster.node(f"n{rank}"),
                         app_id=app_id, world_rank=rank, addressbook=book,
                         transport=transport, polling=polling)
        apis.append(MpiApi(ep, nprocs=nprocs))
    return cluster, apis


def run_ranks(cluster, apis, fn: Callable, until: float = 50.0) -> List:
    """Run generator ``fn(mpi, rank)`` on every rank; returns results."""
    procs = []
    for rank, mpi in enumerate(apis):
        node = cluster.node(mpi.endpoint.node.node_id)
        procs.append(node.spawn(fn(mpi, rank), name=f"rank{rank}"))
    cluster.engine.run(until=until)
    for p in procs:
        assert p.triggered, f"{p.name} did not finish (deadlock?)"
        if not p.ok:
            raise p.value
    return [p.value for p in procs]
