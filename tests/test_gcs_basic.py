"""Group communication: stable-group behaviour."""

import pytest

from repro.gcs import CastEvent, GroupMember, ViewEvent

from tests.gcs_helpers import Harness, assert_common_prefix


def test_singleton_founds_group():
    h = Harness(nodes=1)
    h.boot_all()
    h.run(until=0.1)
    view = h.last_view("n0")
    assert view is not None
    assert len(view) == 1
    assert h.members["n0"].is_coordinator


def test_all_members_converge_to_full_view():
    h = Harness(nodes=4)
    h.boot_all()
    h.run(until=2.0)
    for nid in h.members:
        assert h.member_ids(nid) == ["n0", "n1", "n2", "n3"], nid
    # Exactly one coordinator.
    coords = [gm for gm in h.members.values() if gm.is_coordinator]
    assert len(coords) == 1
    # And all agree on the same epoch.
    epochs = {h.last_view(nid).epoch for nid in h.members}
    assert len(epochs) == 1


def test_cast_reaches_every_member_including_sender():
    h = Harness(nodes=3)
    h.boot_all()
    h.run(until=2.0)
    h.members["n1"].cast("hello")
    h.run(until=3.0)
    for nid in h.members:
        assert h.casts(nid) == ["hello"], nid


def test_casts_totally_ordered_across_concurrent_senders():
    h = Harness(nodes=4)
    h.boot_all()
    h.run(until=2.0)
    for nid, gm in h.members.items():
        for i in range(5):
            gm.cast((nid, i))
    h.run(until=4.0)
    seqs = [h.casts(nid) for nid in h.members]
    # everyone delivered everything...
    for s in seqs:
        assert len(s) == 20
    # ...in exactly the same order
    assert_common_prefix(seqs)


def test_fifo_per_sender():
    h = Harness(nodes=3)
    h.boot_all()
    h.run(until=2.0)
    for i in range(10):
        h.members["n2"].cast(i)
    h.run(until=4.0)
    for nid in h.members:
        mine = [p for p in h.casts(nid) if isinstance(p, int)]
        assert mine == list(range(10)), nid


def test_no_duplicates_in_stable_group():
    h = Harness(nodes=3)
    h.boot_all()
    h.run(until=2.0)
    for i in range(8):
        h.members["n0"].cast(i)
    h.run(until=4.0)
    for gm in h.members.values():
        assert gm.stats["duplicates"] == 0


def test_p2p_send_delivered_once():
    h = Harness(nodes=2)
    h.boot_all()
    h.run(until=2.0)
    dst = h.members["n1"].endpoint
    h.members["n0"].send(dst, {"op": "ping"})
    h.run(until=2.5)
    from repro.gcs import P2pEvent
    p2ps = [ev for ev in h.log["n1"] if isinstance(ev, P2pEvent)]
    assert len(p2ps) == 1
    assert p2ps[0].payload == {"op": "ping"}
    assert p2ps[0].source == h.members["n0"].endpoint


def test_view_event_reports_joiners():
    h = Harness(nodes=2)
    h.boot_all()
    h.run(until=2.0)
    final_views = h.views("n0")
    # The founder saw itself alone first, then n1 join.
    assert any(len(v.view) == 1 for v in final_views)
    joined_nodes = {m.node for v in final_views for m in v.joined}
    assert "n1" in joined_nodes


def test_state_transfer_to_joiner():
    blob = {"config": 42}
    h = Harness(nodes=3, state_provider=lambda: blob)
    h.boot_all()
    h.run(until=2.0)
    for nid in ("n1", "n2"):
        first_view = h.views(nid)[0]
        assert first_view.state == blob, nid
    # The founder never receives state (it already has it).
    assert all(v.state is None for v in h.views("n0"))


def test_cast_before_view_is_delivered_eventually():
    # A member casts immediately after start(), before any view exists;
    # the cast must be ordered once the group forms.
    h = Harness(nodes=2)
    ids = sorted(h.members)
    first = h.members[ids[0]]
    first.start(contact=None)
    second = h.members[ids[1]]
    second.start(contact=first.endpoint)
    second.cast("early-bird")
    h.run(until=2.0)
    assert h.casts("n0") == ["early-bird"]
    assert h.casts("n1") == ["early-bird"]


def test_stats_counters():
    h = Harness(nodes=2)
    h.boot_all()
    h.run(until=2.0)
    h.members["n0"].cast("x")
    h.run(until=3.0)
    gm = h.members["n0"]
    assert gm.stats["casts"] == 1
    assert gm.stats["delivered"] == 1
    assert gm.stats["views"] >= 2


def test_start_twice_is_error():
    from repro.errors import NotMember
    h = Harness(nodes=1)
    h.boot_all()
    with pytest.raises(NotMember):
        h.members["n0"].start()


def test_control_traffic_stays_off_myrinet():
    h = Harness(nodes=3)
    h.boot_all()
    h.run(until=2.0)
    h.members["n0"].cast("data")
    h.run(until=3.0)
    assert h.cluster.myrinet.frames_sent == 0
    assert h.cluster.ethernet.frames_sent > 0
