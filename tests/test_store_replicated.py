"""ReplicatedStore + RepairService: k copies, honest availability."""

import pytest

from repro.ckpt.storage import CheckpointRecord, CheckpointStore
from repro.cluster import Cluster, ClusterSpec
from repro.errors import NoCheckpoint
from repro.store import RepairService, ReplicatedStore


def _rec(app_id, rank, version, nbytes=20_000):
    return CheckpointRecord(app_id=app_id, rank=rank, version=version,
                            level="vm", nbytes=nbytes, image=b"x" * 8,
                            arch_name="test", taken_at=0.0)


def _build(nodes=5, seed=0, k=2, policy="ring", repair=None):
    cluster = Cluster.build(spec=ClusterSpec(nodes=nodes, seed=seed))
    store = ReplicatedStore(cluster.engine, cluster, k=k, policy=policy)
    cluster.watchers.append(store.on_membership)
    if repair is not None:
        store.repair = RepairService(cluster.engine, cluster, store,
                                     bandwidth=repair)
    return cluster, store


def _write_all(cluster, store, app_id, ranks, version, nbytes=20_000):
    """Write one record per rank (rank r dumps through node n<r>)."""
    for rank in ranks:
        node = cluster.nodes[f"n{rank}"]
        cluster.engine.process(
            store.write(node, _rec(app_id, rank, version, nbytes)))
    cluster.engine.run()


def _drive(engine, gen, out):
    """Run a store read generator in a process, capturing result/error."""
    def runner():
        try:
            out["record"] = yield from gen
        except NoCheckpoint as exc:
            out["error"] = exc
    engine.process(runner())
    engine.run()


# ---------------------------------------------------------------------------
# replication fan-out and availability
# ---------------------------------------------------------------------------

def test_write_fans_out_to_k_holders():
    cluster, store = _build(nodes=5, k=3)
    _write_all(cluster, store, "app", range(3), 1)
    for rank in range(3):
        rec = store.peek("app", rank, 1)
        assert len(rec.holder_nodes) == 3
        assert rec.holder_nodes[0] == f"n{rank}"     # primary first
        assert len(set(rec.holder_nodes)) == 3
    assert store.replica_deficit() == 0


def test_small_cluster_caps_fanout_and_reports_deficit_honestly():
    cluster, store = _build(nodes=2, k=3)
    _write_all(cluster, store, "app", [0], 1)
    rec = store.peek("app", 0, 1)
    assert sorted(rec.holder_nodes) == ["n0", "n1"]
    # target is min(k, up nodes) = 2: fully provisioned for this cluster
    assert store.replica_deficit() == 0


def test_crash_of_k_minus_1_holders_keeps_line_restorable():
    cluster, store = _build(nodes=5, k=2)
    _write_all(cluster, store, "app", range(3), 1)
    store.commit("app", 1)
    assert store.latest_restorable("app", range(3)) == 1
    # crash ANY single node: with k=2 the line must survive
    for victim in sorted(cluster.nodes):
        c2, s2 = _build(nodes=5, k=2)
        _write_all(c2, s2, "app", range(3), 1)
        s2.commit("app", 1)
        c2.crash_node(victim)
        assert s2.latest_restorable("app", range(3)) == 1, victim


def test_k1_guard_single_crash_loses_the_line():
    cluster, store = _build(nodes=5, k=1)
    _write_all(cluster, store, "app", range(3), 1)
    store.commit("app", 1)
    assert store.latest_restorable("app", range(3)) == 1
    cluster.crash_node("n1")            # the only holder of rank 1
    assert store.latest_restorable("app", range(3)) is None


def test_read_from_remote_replica_after_primary_crash():
    cluster, store = _build(nodes=4, k=2)
    _write_all(cluster, store, "app", [0], 1)
    cluster.crash_node("n0")            # primary gone; replica on n1
    out = {}
    _drive(cluster.engine,
           store.read(cluster.nodes["n2"], "app", 0, 1), out)
    assert out["record"].version == 1
    assert int(store._m_remote_reads.value) == 1


def test_read_with_no_reachable_replica_raises_nocheckpoint():
    cluster, store = _build(nodes=3, k=2)
    _write_all(cluster, store, "app", [0], 1)
    for holder in list(store.peek("app", 0, 1).holder_nodes):
        cluster.crash_node(holder)
    out = {}
    _drive(cluster.engine,
           store.read(cluster.nodes["n2"], "app", 0, 1), out)
    assert "no reachable replica" in str(out["error"])


def test_partitioned_reader_cannot_count_remote_replicas():
    cluster, store = _build(nodes=5, k=2)
    _write_all(cluster, store, "app", [0], 1)   # holders n0, n1
    store.commit("app", 1)
    cluster.myrinet.set_partition(["n0", "n1"], ["n2", "n3", "n4"])
    assert store.latest_restorable("app", [0], from_node="n3") is None
    assert store.latest_restorable("app", [0], from_node="n0") == 1
    cluster.myrinet.clear_partition()
    assert store.latest_restorable("app", [0], from_node="n3") == 1


def test_partition_during_write_fails_replica_and_leaves_deficit():
    cluster, store = _build(nodes=4, k=2)
    # ring successor of n0 is n1 — unreachable during the write
    cluster.myrinet.set_partition(["n0", "n2", "n3"], ["n1"])
    _write_all(cluster, store, "app", [0], 1)
    rec = store.peek("app", 0, 1)
    assert rec.holder_nodes == ["n0"]
    assert int(store._m_repl_failed.value) == 1
    assert store.replica_deficit() == 1


# ---------------------------------------------------------------------------
# repair
# ---------------------------------------------------------------------------

def test_repair_restores_replication_after_crash():
    cluster, store = _build(nodes=5, k=2, repair=4.0e6)
    _write_all(cluster, store, "app", range(3), 1)
    store.commit("app", 1)
    cluster.crash_node("n1")            # holder of (rank0 replica, rank1 prim)
    assert store.replica_deficit() > 0
    cluster.engine.run(until=cluster.engine.now + 5.0)
    assert store.replica_deficit() == 0
    status = store.repair.status()
    assert status["repaired"] >= 1 and status["failed"] == 0
    for rank in range(3):
        live = [h for h in store.peek("app", rank, 1).holder_nodes
                if store._node_up(h)]
        assert len(live) == 2, rank
    # the line stayed restorable throughout (k=2 contract)
    assert store.latest_restorable("app", range(3)) == 1


def test_repair_respects_bytes_per_second_budget():
    nbytes = 2_000_000
    budget = 1.0e6                      # 1 MB/s -> >= 2 s per copy
    cluster, store = _build(nodes=4, k=2, repair=budget)
    _write_all(cluster, store, "app", [0], 1, nbytes=nbytes)
    t0 = cluster.engine.now
    cluster.crash_node("n1")            # the replica holder
    cluster.engine.run(until=t0 + 1.5)  # well before nbytes/budget elapses
    assert store.repair.status()["repaired"] == 0
    cluster.engine.run(until=t0 + 6.0)
    assert store.repair.status()["repaired"] == 1
    assert store.replica_deficit() == 0


def test_repair_after_partition_heals():
    cluster, store = _build(nodes=4, k=2, repair=4.0e6)
    cluster.myrinet.set_partition(["n0", "n2", "n3"], ["n1"])
    _write_all(cluster, store, "app", [0], 1)
    assert store.replica_deficit() == 1
    cluster.myrinet.clear_partition()
    store.repair.kick(reason="heal")
    cluster.engine.run(until=cluster.engine.now + 3.0)
    assert store.replica_deficit() == 0
    assert len(store.peek("app", 0, 1).holder_nodes) == 2


def test_node_removal_drops_disk_holders_and_repairs():
    cluster, store = _build(nodes=5, k=2, repair=4.0e6)
    _write_all(cluster, store, "app", [0], 1)   # holders n0, n1
    cluster.remove_node("n1")
    rec = store.peek("app", 0, 1)
    assert "n1" not in rec.holder_nodes         # disk left for good
    cluster.engine.run(until=cluster.engine.now + 3.0)
    assert len(store.peek("app", 0, 1).holder_nodes) == 2


# ---------------------------------------------------------------------------
# satellite (a): GC vs concurrent restart read
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("store_kind", ["legacy", "replicated"])
def test_gc_cannot_collect_a_version_mid_read(store_kind):
    cluster = Cluster.build(spec=ClusterSpec(nodes=3, seed=0))
    engine = cluster.engine
    if store_kind == "legacy":
        store = CheckpointStore(engine)
    else:
        store = ReplicatedStore(engine, cluster, k=2)
    node = cluster.nodes["n0"]
    for v in (1, 2, 3):
        engine.process(store.write(node, _rec("app", 0, v, nbytes=500_000)))
        engine.run()
        store.commit("app", v)
    out = {}

    def reader():
        out["record"] = yield from store.read(node, "app", 0, 1)
    engine.process(reader())
    engine.run(until=engine.now + 1e-4)     # inside the disk read: pinned
    assert store._pins.get(("app", 0, 1))
    removed = store.gc_committed("app", keep=1)
    # v2 is collectable now; the pinned v1 must survive until the read ends
    assert not store.has("app", 0, 2) and removed >= 1
    assert store.has("app", 0, 1)
    engine.run()
    assert out["record"].version == 1       # reader got its record
    assert not store.has("app", 0, 1)       # deferred GC swept it at unpin


# ---------------------------------------------------------------------------
# satellite (b): crash -> volatile-copy drop is atomic
# ---------------------------------------------------------------------------

def test_crashed_holder_volatile_copy_never_counts_restorable():
    cluster = Cluster.build(spec=ClusterSpec(nodes=3, seed=0))
    store = CheckpointStore(cluster.engine)
    # the Starfish layer's liveness probe, wired by hand here
    store.node_liveness = lambda nid: (nid in cluster.nodes
                                       and cluster.nodes[nid].is_up)
    rec = _rec("app", 0, 1)
    store.write_memory(rec, holder_node="n1")
    store.commit("app", 1)
    assert store.latest_restorable("app", [0]) == 1
    # crash the node directly — NO watcher runs, drop_volatile not called
    cluster.nodes["n1"].crash()
    assert store.has("app", 0, 1)           # record still registered, but
    assert not store.record_available("app", 0, 1)
    assert store.latest_restorable("app", [0]) is None


def test_remove_node_notifies_crash_then_remove_same_instant():
    cluster = Cluster.build(spec=ClusterSpec(nodes=3, seed=0))
    events = []
    cluster.watchers.append(lambda nid, ev: events.append((nid, ev)))
    cluster.remove_node("n2")
    assert events == [("n2", "crash"), ("n2", "remove")]
