"""Edge cases across layers that the main suites don't reach."""

import pytest

from repro.cluster import Cluster
from repro.errors import (AuthenticationError, CheckpointError, MpiError,
                          ProtocolError, ReproError, SimulationError)
from repro.sim import Engine


# ---------------------------------------------------------------------------
# error hierarchy
# ---------------------------------------------------------------------------

def test_every_library_error_is_a_repro_error():
    import repro.errors as errors
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception):
            if name in ("StopSimulation", "Interrupt"):
                assert not issubclass(obj, ReproError), name
            elif obj is not ReproError and issubclass(obj, ReproError):
                pass  # fine
    assert issubclass(MpiError, ReproError)
    assert issubclass(CheckpointError, ReproError)
    assert issubclass(AuthenticationError, ProtocolError)


# ---------------------------------------------------------------------------
# engine odds and ends
# ---------------------------------------------------------------------------

def test_run_until_already_processed_event():
    eng = Engine()
    ev = eng.event()
    ev.succeed("early")
    eng.run()
    assert eng.run(until=ev) == "early"        # returns instantly


def test_run_until_processed_failed_event_raises():
    eng = Engine()
    ev = eng.event()
    ev.fail(ValueError("x"))
    ev.defuse()
    eng.run()
    with pytest.raises(ValueError):
        eng.run(until=ev)


def test_event_value_before_trigger_raises():
    eng = Engine()
    ev = eng.event()
    with pytest.raises(SimulationError):
        _ = ev.value
    with pytest.raises(SimulationError):
        _ = ev.ok


def test_condition_cross_engine_rejected():
    e1, e2 = Engine(), Engine()
    with pytest.raises(SimulationError):
        e1.event() | e2.event()


# ---------------------------------------------------------------------------
# MPI endpoint edges
# ---------------------------------------------------------------------------

def test_send_to_unknown_rank_raises():
    from repro.mpi import MpiEndpoint
    cluster = Cluster.build(nodes=1)
    ep = MpiEndpoint(cluster.engine, cluster.node("n0"), app_id="a",
                     world_rank=0, addressbook={})

    def prog():
        with pytest.raises(MpiError, match="no address"):
            yield from ep.send(7, "c", 0, 0, "x")
        return True

    assert cluster.engine.run(cluster.engine.process(prog()))


def test_communicator_requires_membership():
    from repro.errors import CommunicatorError
    from repro.mpi import Communicator, MpiEndpoint
    cluster = Cluster.build(nodes=1)
    ep = MpiEndpoint(cluster.engine, cluster.node("n0"), app_id="a",
                     world_rank=0, addressbook={})
    with pytest.raises(CommunicatorError):
        Communicator(ep, "c", group=(1, 2))


def test_freed_communicator_rejects_operations():
    from repro.errors import CommunicatorError
    from repro.mpi import Communicator, MpiEndpoint
    cluster = Cluster.build(nodes=1)
    ep = MpiEndpoint(cluster.engine, cluster.node("n0"), app_id="a",
                     world_rank=0, addressbook={})
    comm = Communicator(ep, "c", group=(0,))
    comm.free()
    with pytest.raises(CommunicatorError):
        comm.irecv()


def test_request_double_complete_rejected():
    from repro.mpi.request import Request
    cluster = Cluster.build(nodes=1)
    req = Request(cluster.engine, "recv")
    req.complete("a")
    with pytest.raises(MpiError):
        req.complete("b")


def test_waitany_empty_rejected():
    from repro.mpi.request import waitany
    cluster = Cluster.build(nodes=1)
    with pytest.raises(MpiError):
        list(waitany(cluster.engine, []))


# ---------------------------------------------------------------------------
# datatypes sizing
# ---------------------------------------------------------------------------

def test_nbytes_of_estimates():
    import numpy as np
    from repro.mpi.datatypes import nbytes_of
    assert nbytes_of(None) == 1
    assert nbytes_of(True) == 1
    assert nbytes_of(b"abcd") == 4
    assert nbytes_of(np.zeros(10)) == 80
    assert nbytes_of(3.14) == 8
    assert nbytes_of("héllo") == len("héllo".encode())
    assert nbytes_of([1, 2]) > 16
    assert nbytes_of({"k": 1.0}) > 8
    assert nbytes_of(object()) == 8


# ---------------------------------------------------------------------------
# gcs edges
# ---------------------------------------------------------------------------

def test_singleton_coordinator_leave_is_clean():
    from repro.gcs import GroupMember
    cluster = Cluster.build(nodes=1)
    gm = GroupMember(cluster.engine, cluster.node("n0"))
    gm.start()
    cluster.engine.run(until=0.2)
    gm.leave()           # nobody to hand off to; must not blow up
    cluster.engine.run(until=0.4)


def test_lwg_cast_on_unknown_group_rejected():
    from repro.errors import NotMember
    from repro.gcs import GroupMember
    from repro.lwg import LwgManager
    cluster = Cluster.build(nodes=1)
    gm = GroupMember(cluster.engine, cluster.node("n0"))
    mgr = LwgManager(cluster.engine, gm)
    with pytest.raises(NotMember):
        mgr.cast("ghost-app", "payload")


def test_view_member_on():
    from repro.gcs.endpoint import EndpointId, View
    a = EndpointId("n0", "daemon", 1)
    b = EndpointId("n1", "daemon", 2)
    view = View(group="g", epoch=1, coordinator=a, members=(a, b))
    assert view.member_on("n1") == b
    assert view.member_on("n9") is None
    assert a in view and len(view) == 2
    assert view.rank(b) == 1


# ---------------------------------------------------------------------------
# client protocol edges
# ---------------------------------------------------------------------------

def test_migrate_parse_arity():
    from repro.daemon import parse_command
    assert parse_command("MIGRATE app 1 n2") == ("MIGRATE",
                                                 ["app", "1", "n2"])
    with pytest.raises(ProtocolError):
        parse_command("MIGRATE app 1")


def test_submit_nprocs_must_be_number():
    from repro.daemon import parse_command
    with pytest.raises(ProtocolError):
        parse_command("SUBMIT job many program=x")


def test_quoted_arguments_supported():
    from repro.daemon import parse_command
    verb, args = parse_command('SET motd "hello world"')
    assert args == ["motd", "hello world"]
