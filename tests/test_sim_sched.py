"""Unit + conformance tests for the pluggable event-list schedulers.

The :class:`~repro.sim.sched.CalendarQueue` promises *byte-identical*
dispatch order to the reference ``heapq`` scheduler — including
same-instant ``(time, priority)`` tie groups, which the perturbation
machinery shuffles as a unit.  These tests pin that contract directly
(randomized heap-vs-calendar drains) and at the engine level (identical
dispatch sequences with and without an installed perturbation), plus the
calendar's own mechanics: staging, resizing, the epoch floor, and the
``sim.sched.*`` telemetry gauges.
"""

import heapq
import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Engine
from repro.sim.sched import (MIN_BUCKETS, SCHEDULERS, CalendarQueue)

# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

_seq = itertools.count()


def _entry(time, priority=1):
    """A heap entry shaped like the engine's (time, priority, seq, event)."""
    return (time, priority, next(_seq), object())


def _drain(queue):
    out = []
    while queue:
        out.append(queue.pop())
    return out


# ---------------------------------------------------------------------------
# construction / validation
# ---------------------------------------------------------------------------

def test_schedulers_tuple_matches_cluster_spec():
    """The spec module duplicates SCHEDULERS to avoid importing the sim
    layer from the config layer; the two must never drift."""
    from repro.cluster import spec
    assert spec.SCHEDULERS == SCHEDULERS


def test_invalid_width_rejected():
    with pytest.raises(ValueError):
        CalendarQueue(width=0.0)
    with pytest.raises(ValueError):
        CalendarQueue(width=-1.0)


def test_non_power_of_two_buckets_rejected():
    with pytest.raises(ValueError):
        CalendarQueue(nbuckets=12)
    with pytest.raises(ValueError):
        CalendarQueue(nbuckets=0)


def test_engine_rejects_unknown_scheduler():
    with pytest.raises(ValueError):
        Engine(scheduler="splay-tree")


def test_cluster_spec_rejects_unknown_scheduler():
    from repro.cluster.spec import ClusterSpec
    with pytest.raises(ValueError):
        ClusterSpec(scheduler="splay-tree")


# ---------------------------------------------------------------------------
# basic ordering
# ---------------------------------------------------------------------------

def test_empty_queue_behaviour():
    q = CalendarQueue()
    assert len(q) == 0
    assert not q
    assert q.pop() is None
    assert q.pop_until(10.0) is None
    assert q.peek_time() == float("inf")
    assert q.peek_key() is None


def test_pops_in_time_priority_seq_order():
    q = CalendarQueue()
    entries = [_entry(3.0), _entry(1.0), _entry(2.0, priority=0),
               _entry(2.0, priority=1), _entry(0.5)]
    for e in entries:
        q.push(e)
    assert _drain(q) == sorted(entries)


def test_same_instant_ties_pop_in_insertion_order():
    q = CalendarQueue()
    ties = [_entry(1.0) for _ in range(20)]
    for e in ties:
        q.push(e)
    assert _drain(q) == ties        # seq rises with insertion order


def test_len_and_bool_include_staged_pushes():
    q = CalendarQueue()
    q.push(_entry(1.0))
    q.push(_entry(2.0))
    # Nothing drained yet — the staging list must still count.
    assert len(q) == 2
    assert bool(q)
    assert q.peek_time() == 1.0     # peek folds staging in
    assert len(q) == 2


def test_pop_until_respects_limit_and_leaves_entry_queued():
    q = CalendarQueue()
    late = _entry(5.0)
    q.push(late)
    assert q.pop_until(1.0) is None
    assert len(q) == 1              # still queued
    assert q.pop_until(5.0) == late
    assert len(q) == 0


def test_declined_pop_until_does_not_advance_epoch():
    """Regression: a peek/declined pop_until must not advance the scan
    epoch.  If it does, pushes landing on days between the last pop and
    the declined head get skipped and the queue dispatches out of order
    (the engine then dies with "event queue went back in time")."""
    q = CalendarQueue(width=0.001)
    first = _entry(0.0004)
    q.push(first)
    assert q.pop() == first         # _last = 0.0004
    far = _entry(1.0)               # hundreds of days ahead
    q.push(far)
    assert q.pop_until(0.5) is None          # declines; must not move epoch
    near = _entry(0.01)             # lands between _last and far
    q.push(near)
    assert q.pop() == near
    assert q.pop() == far


def test_peek_after_far_future_entry_keeps_order():
    """Same hazard via peek_time: peeking at an entry a full year of days
    away (direct-search path) must leave the epoch on the floor."""
    q = CalendarQueue(width=0.001, nbuckets=16)
    far = _entry(10.0)              # >> 16 buckets * 1ms = one 16ms year
    q.push(far)
    assert q.peek_time() == 10.0
    near = _entry(0.005)
    q.push(near)
    assert q.pop() == near
    assert q.pop() == far


# ---------------------------------------------------------------------------
# resizing / telemetry
# ---------------------------------------------------------------------------

def test_grows_past_min_buckets_and_counts_resizes():
    q = CalendarQueue()
    for i in range(200):
        q.push(_entry(i * 0.01))
    q.peek_time()                   # forces the drain (and the grow)
    assert q.nbuckets > MIN_BUCKETS
    assert q.resizes >= 1
    assert len(q) == 200


def test_shrinks_back_down_after_draining():
    q = CalendarQueue()
    entries = [_entry(i * 0.01) for i in range(300)]
    for e in entries:
        q.push(e)
    assert _drain(q) == entries
    assert q.nbuckets == MIN_BUCKETS


def test_resize_preserves_order_and_ties():
    q = CalendarQueue()
    entries = ([_entry(1.0) for _ in range(40)]
               + [_entry(0.25 * i) for i in range(100)])
    for e in entries:
        q.push(e)
    assert _drain(q) == sorted(entries)


def test_direct_search_counted_for_far_future_entry():
    q = CalendarQueue(width=0.001, nbuckets=16)
    q.push(_entry(100.0))           # far beyond one year of days
    assert q.peek_time() == 100.0
    assert q.direct_searches >= 1


def test_width_adapts_to_schedule_density():
    q = CalendarQueue()
    for i in range(200):
        q.push(_entry(i * 0.5))     # 0.5s spacing
    q.peek_time()
    assert q.resizes >= 1
    assert q.width == pytest.approx(1.5)     # 3x the uniform gap


def test_width_estimate_survives_all_ties_sample():
    """200 same-instant entries: no usable gap — the resize must keep a
    sane width instead of dividing by zero or going to zero."""
    q = CalendarQueue()
    entries = [_entry(2.0) for _ in range(200)]
    for e in entries:
        q.push(e)
    q.peek_time()
    assert q.width > 0.0
    assert _drain(q) == entries


def test_engine_exports_sched_gauges():
    eng = Engine(scheduler="calendar")
    names = {name for name, _labels, _v in eng.metrics.sampled_gauges()}
    assert {"sim.sched.buckets", "sim.sched.occupancy", "sim.sched.width",
            "sim.sched.resizes", "sim.sched.direct_searches"} <= names
    heap_names = {name for name, _l, _v
                  in Engine().metrics.sampled_gauges()}
    assert "sim.sched.buckets" not in heap_names


# ---------------------------------------------------------------------------
# heap conformance (the byte-identity contract)
# ---------------------------------------------------------------------------

# Coarse time grid + tiny priority range = heavy (time, priority) ties,
# the regime where bucket-heap ordering could plausibly diverge.
_times = st.integers(min_value=0, max_value=30).map(lambda i: i * 0.125)
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("push"), _times,
                  st.integers(min_value=0, max_value=1)),
        st.tuples(st.just("pop"), st.just(0.0), st.just(0)),
    ),
    min_size=1, max_size=200)


@settings(max_examples=60, deadline=None)
@given(ops=_ops)
def test_calendar_matches_heap_under_interleaved_ops(ops):
    heap, cal = [], CalendarQueue()
    seq = itertools.count()
    floor = 0.0     # engine contract: pushes happen at t >= now
    for op, time, priority in ops:
        if op == "push":
            entry = (max(time, floor), priority, next(seq), None)
            heapq.heappush(heap, entry)
            cal.push(entry)
        else:
            expected = heapq.heappop(heap) if heap else None
            assert cal.pop() == expected
            if expected is not None:
                floor = expected[0]
    while heap:
        assert cal.pop() == heapq.heappop(heap)
    assert cal.pop() is None


@settings(max_examples=30, deadline=None)
@given(times=st.lists(_times, min_size=1, max_size=120),
       limits=st.lists(_times, min_size=1, max_size=20))
def test_pop_until_matches_heap(times, limits):
    heap, cal = [], CalendarQueue()
    seq = itertools.count()
    for t in times:
        entry = (t, 1, next(seq), None)
        heapq.heappush(heap, entry)
        cal.push(entry)
    for limit in limits:
        expected = (heapq.heappop(heap)
                    if heap and heap[0][0] <= limit else None)
        assert cal.pop_until(limit) == expected
    while heap:
        assert cal.pop() == heapq.heappop(heap)


# ---------------------------------------------------------------------------
# engine-level parity
# ---------------------------------------------------------------------------

def _tie_heavy_run(scheduler, perturb_seed=None):
    """A workload full of same-instant timeouts; returns the dispatch
    order as (time, tag) pairs."""
    eng = Engine(seed=7, scheduler=scheduler)
    if perturb_seed is not None:
        from repro.check.perturb import SchedulePerturbation
        eng.set_perturbation(SchedulePerturbation(perturb_seed))
    order = []

    def proc(tag):
        for step in range(5):
            yield eng.timeout(0.25)
            order.append((eng.now, tag))

    for tag in range(12):
        eng.process(proc(tag))
    eng.run()
    return order


def test_engine_calendar_matches_heap_dispatch():
    assert _tie_heavy_run("calendar") == _tie_heavy_run("heap")


@pytest.mark.parametrize("perturb_seed", [1, 2, 3])
def test_engine_calendar_matches_heap_under_perturbation(perturb_seed):
    """Perturbed tie groups are collected via peek_key/pop on the
    scheduler; the shuffled outcome must match the heap's exactly (same
    groups in, same seeded shuffle out)."""
    assert (_tie_heavy_run("calendar", perturb_seed)
            == _tie_heavy_run("heap", perturb_seed))


def test_engine_run_until_time_then_resume():
    """run(until=t) peeks at events beyond t; resuming with later pushes
    must stay ordered (the epoch-floor regression at engine level)."""
    results = {}
    for scheduler in SCHEDULERS:
        eng = Engine(scheduler=scheduler)
        order = []

        def proc():
            for _ in range(20):
                yield eng.timeout(0.3)
                order.append(eng.now)

        eng.process(proc())
        eng.run(until=1.0)
        assert eng.now == 1.0
        # Schedule fresh near-term work mid-run, then finish.
        def late():
            yield eng.timeout(0.05)
            order.append(eng.now)
        eng.process(late())
        eng.run()
        results[scheduler] = order
    assert results["calendar"] == results["heap"]


def test_engine_step_parity():
    for scheduler in SCHEDULERS:
        eng = Engine(scheduler=scheduler)
        eng.timeout(1.0)
        eng.timeout(0.5)
        eng.step()
        assert eng.now == 0.5
        eng.step()
        assert eng.now == 1.0


def test_from_spec_picks_up_scheduler():
    from repro.cluster.spec import ClusterSpec
    eng = Engine.from_spec(ClusterSpec(scheduler="calendar"))
    assert eng.scheduler == "calendar"
    assert Engine.from_spec(ClusterSpec()).scheduler == "heap"
