"""The observability substrate: instruments, registry, event log, exporters."""

import json

import pytest

from repro.errors import SimulationError
from repro.obs import (DEFAULT_LATENCY_BUCKETS, Counter, EventLog, Gauge,
                       Histogram, MetricsRegistry, NULL_REGISTRY,
                       chrome_trace, flatten, get_registry, to_prometheus,
                       to_text)
from repro.sim import Engine
from repro.sim.trace import Tracer


# ---------------------------------------------------------------------------
# instruments
# ---------------------------------------------------------------------------

def test_counter_is_monotonic():
    c = Counter("x")
    c.inc()
    c.inc(3)
    assert c.value == 4
    with pytest.raises(ValueError):
        c.inc(-1)
    c.reset()
    assert c.value == 0


def test_gauge_moves_both_ways():
    g = Gauge("depth")
    g.set(5)
    g.inc(2)
    g.dec()
    assert g.value == 6
    g.reset()
    assert g.value == 0.0


def test_histogram_buckets_and_stats():
    h = Histogram("lat", buckets=(0.001, 0.01, 0.1))
    for v in (0.0005, 0.002, 0.02, 0.5):
        h.observe(v)
    assert h.count == 4
    assert h.sum == pytest.approx(0.5225)
    assert h.mean == pytest.approx(0.5225 / 4)
    assert h.min == 0.0005 and h.max == 0.5
    # Cumulative le-style counts, overflow bucket included.
    assert h.bucket_counts() == {0.001: 1, 0.01: 2, 0.1: 3,
                                 float("inf"): 4}
    assert h.quantile(0.5) == 0.01
    h.reset()
    assert h.count == 0 and h.min is None
    assert h.bucket_counts()[float("inf")] == 0


def test_histogram_rejects_unsorted_buckets():
    with pytest.raises(ValueError):
        Histogram("bad", buckets=(0.1, 0.01))


def test_default_latency_buckets_are_ascending():
    assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)
    assert DEFAULT_LATENCY_BUCKETS[0] == pytest.approx(1e-6)


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

def test_get_or_create_identity_ignores_label_order():
    reg = MetricsRegistry()
    a = reg.counter("net.frames", fabric="myr", kind="data")
    b = reg.counter("net.frames", kind="data", fabric="myr")
    assert a is b
    a.inc(7)
    assert reg.value("net.frames", fabric="myr", kind="data") == 7


def test_kind_conflict_rejected():
    reg = MetricsRegistry()
    reg.counter("x.y")
    with pytest.raises(TypeError):
        reg.gauge("x.y")


def test_sum_and_group_by_aggregate_series():
    reg = MetricsRegistry()
    reg.counter("f", fabric="eth", kind="data").inc(3)
    reg.counter("f", fabric="eth", kind="control").inc(2)
    reg.counter("f", fabric="myr", kind="data").inc(10)
    assert reg.sum("f") == 15
    assert reg.sum("f", fabric="eth") == 5
    assert reg.group_by("f", "kind", fabric="eth") == {"data": 3,
                                                       "control": 2}
    assert reg.group_by("f", "fabric") == {"eth": 5, "myr": 10}


def test_disabled_registry_hands_out_noops():
    reg = MetricsRegistry(enabled=False)
    c = reg.counter("a")
    c.inc(5)
    assert c.value == 0
    reg.histogram("h").observe(1.0)
    reg.gauge("g").set(9)
    assert reg.instruments() == []
    assert flatten(reg) == {}


def test_gauge_fn_sampled_at_collect_time():
    reg = MetricsRegistry()
    box = {"v": 1}
    reg.gauge_fn("live.depth", lambda: box["v"])
    assert flatten(reg)["live.depth"] == 1
    box["v"] = 42
    assert flatten(reg)["live.depth"] == 42


def test_registry_reset_keeps_series():
    reg = MetricsRegistry()
    c = reg.counter("n", k="v")
    c.inc(9)
    reg.events.emit(0.5, "boom")
    reg.reset()
    assert c.value == 0
    assert len(reg.events) == 0
    assert reg.get("n", k="v") is c


def test_get_registry_falls_back_to_null():
    assert get_registry(object()) is NULL_REGISTRY
    eng = Engine()
    assert get_registry(eng) is eng.metrics


# ---------------------------------------------------------------------------
# event log
# ---------------------------------------------------------------------------

def test_event_log_is_bounded_ring():
    log = EventLog(capacity=3)
    for i in range(5):
        log.emit(float(i), "tick", i=i)
    assert log.emitted == 5
    assert log.dropped == 2
    assert [e.field_dict["i"] for e in log.records()] == [2, 3, 4]
    assert log.records("tick") and not log.records("other")
    log.clear()
    assert len(log) == 0 and log.emitted == 0


# ---------------------------------------------------------------------------
# exporters
# ---------------------------------------------------------------------------

def test_flatten_and_text_formats():
    reg = MetricsRegistry()
    reg.counter("net.frames_sent", fabric="myr", kind="data").inc(5)
    reg.histogram("lat", buckets=(0.01,)).observe(0.002)
    flat = flatten(reg)
    assert flat["net.frames_sent{fabric=myr,kind=data}"] == 5
    assert flat["lat_count"] == 1
    assert flat["lat_bucket{le=0.01}"] == 1
    assert flat["lat_bucket{le=+Inf}"] == 1
    text = to_text(reg)
    assert "net.frames_sent{fabric=myr,kind=data}" in text


def test_prometheus_exposition_format():
    reg = MetricsRegistry()
    reg.counter("net.frames_sent", help="frames", fabric="myr").inc(2)
    reg.histogram("mpi.p2p.latency_seconds", buckets=(0.001,),
                  op="send").observe(0.1)
    out = to_prometheus(reg)
    assert "# TYPE net_frames_sent counter" in out
    assert 'net_frames_sent{fabric="myr"} 2' in out
    assert "# TYPE mpi_p2p_latency_seconds histogram" in out
    assert 'mpi_p2p_latency_seconds_bucket{op="send",le="+Inf"} 1' in out
    assert 'mpi_p2p_latency_seconds_count{op="send"} 1' in out


def test_chrome_trace_schema():
    tr = Tracer()
    tr.span_start("mpi", key=1, now=0.001, size=64)
    tr.span_end("mpi", key=1, now=0.003)
    tr.span_start("vni", key=2, now=0.002)      # leaked: stays open
    log = EventLog()
    log.emit(0.0025, "gcs.view", epoch=1)
    doc = chrome_trace(tr, event_log=log)
    json.dumps(doc)                              # must be serializable
    events = doc["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    assert complete[0]["name"] == "mpi"
    assert complete[0]["ts"] == pytest.approx(1000.0)   # us
    assert complete[0]["dur"] == pytest.approx(2000.0)
    assert any(e["ph"] == "B" and e["name"] == "vni" for e in events)
    assert any(e["ph"] == "i" and e["name"] == "gcs.view" for e in events)
    meta = [e for e in events if e["ph"] == "M"]
    assert {m["args"]["name"] for m in meta} >= {"mpi", "vni", "events"}
    # ts-sorted (metadata events carry no ts and sort first).
    stamped = [e["ts"] for e in events if "ts" in e]
    assert stamped == sorted(stamped)


# ---------------------------------------------------------------------------
# engine integration
# ---------------------------------------------------------------------------

def test_engine_step_on_empty_queue_is_descriptive():
    eng = Engine()
    with pytest.raises(SimulationError, match="event queue is empty"):
        eng.step()


def test_engine_gauges_track_progress():
    eng = Engine()

    def proc():
        yield eng.timeout(1)
        yield eng.timeout(1)

    eng.run(eng.process(proc()))
    flat = flatten(eng.metrics)
    assert flat["sim.events_processed"] == eng.events_processed > 0
    assert flat["sim.queue_depth"] == 0


def test_engine_telemetry_off():
    eng = Engine(telemetry=False)
    assert not eng.metrics.enabled

    def proc():
        yield eng.timeout(1)

    eng.run(eng.process(proc()))
    assert flatten(eng.metrics) == {}
