"""Property tests: channel edges under the perturbed scheduler.

The satellite guarantee of the repro.check PR: across *any* tie-break
order the perturbation explores, no ``put()`` item is ever lost or
double-delivered — including when getters are interrupted (the app-
process scheduler pattern) or the channel closes mid-traffic (a crashed
peer).  These properties pinned the two delivery-path bugs this PR
fixes: ``PriorityChannel.put`` handing items to defused getters, and
``get_nowait`` spinning ``(False, None)`` forever on a closed channel.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import SchedulePerturbation
from repro.errors import ConnectionClosed, Interrupt, SimulationError
from repro.sim import Channel, Engine, PriorityChannel


def _run_traffic(pseed, channel_cls, n_items, n_getters, interrupt_mask,
                 close_at_end):
    """Producers, getters, and an interrupter all collide on the same
    instants; returns (received, leftovers, n_puts)."""
    eng = Engine(seed=0)
    eng.set_perturbation(SchedulePerturbation(pseed))
    ch = channel_cls(eng, name="traffic")
    received = []

    def producer(base):
        # Two put instants per producer, colliding with getter wakeups.
        for i, item in enumerate(base):
            yield eng.timeout(1.0 if i % 2 == 0 else 2.0)
            try:
                ch.put(item)
            except SimulationError:      # closed: the item was never put
                produced.remove(item)

    def getter(idx):
        try:
            while True:
                item = yield ch.get()
                received.append(item)
        except (Interrupt, ConnectionClosed):
            return

    items = list(range(n_items))
    produced = list(items)
    half = max(1, n_items // 2)
    eng.process(producer(items[:half]))
    eng.process(producer(items[half:]))
    getters = [eng.process(getter(i)) for i in range(n_getters)]

    def director():
        yield eng.timeout(1.0)           # collides with the first puts
        for g, hit in zip(getters, interrupt_mask):
            if hit and not g.triggered:
                g.interrupt()
        yield eng.timeout(1.0)           # collides with the second puts
        if close_at_end:
            ch.close(ConnectionClosed("peer died"))

    eng.process(director())
    eng.run()
    # Surviving getters still parked on get() at run-dry are fine; drain
    # whatever no getter consumed.
    leftovers = ch.drain() if not close_at_end else _drain_closed(ch)
    return received, leftovers, produced


def _drain_closed(ch):
    out = []
    while True:
        try:
            ok, item = ch.get_nowait()
        except ConnectionClosed:
            return out
        if not ok:
            return out
        out.append(item)


@settings(max_examples=60, deadline=None)
@given(pseed=st.integers(0, 10**9),
       is_priority=st.booleans(),
       n_items=st.integers(1, 16),
       interrupt_mask=st.lists(st.booleans(), min_size=3, max_size=3),
       close_at_end=st.booleans())
def test_no_item_lost_or_double_delivered(pseed, is_priority, n_items,
                                          interrupt_mask, close_at_end):
    received, leftovers, produced = _run_traffic(
        pseed, PriorityChannel if is_priority else Channel,
        n_items, n_getters=3, interrupt_mask=interrupt_mask,
        close_at_end=close_at_end)
    assert Counter(received) + Counter(leftovers) == Counter(produced)


@settings(max_examples=30, deadline=None)
@given(pseed=st.integers(0, 10**9), n_items=st.integers(1, 12))
def test_plain_channel_stays_fifo_under_any_tie_order(pseed, n_items):
    """One producer, one getter: per-channel FIFO survives the shuffle
    (puts happen at distinct instants, so their order is causal)."""
    eng = Engine(seed=0)
    eng.set_perturbation(SchedulePerturbation(pseed))
    ch = Channel(eng)
    received = []

    def producer():
        for i in range(n_items):
            yield eng.timeout(0.5)
            ch.put(i)

    def getter():
        for _ in range(n_items):
            received.append((yield ch.get()))

    eng.process(producer())
    eng.process(getter())
    eng.run()
    assert received == list(range(n_items))


@settings(max_examples=30, deadline=None)
@given(pseed=st.integers(0, 10**9))
def test_closed_channel_poll_never_spins(pseed):
    """After close+drain, get_nowait raises instead of returning
    (False, None) — under every tie order."""
    eng = Engine(seed=0)
    eng.set_perturbation(SchedulePerturbation(pseed))
    ch = Channel(eng)
    outcome = []

    def poller():
        while True:
            try:
                ok, item = ch.get_nowait()
            except ConnectionClosed:
                outcome.append("closed")
                return
            if ok:
                outcome.append(item)
            yield eng.timeout(0.25)

    def closer():
        yield eng.timeout(1.0)
        ch.put("last")
        ch.close(ConnectionClosed("peer died"))

    eng.process(poller())
    eng.process(closer())
    eng.run()
    assert outcome[-1] == "closed"
    assert outcome[:-1] == ["last"]
