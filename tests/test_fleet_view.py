"""FleetView, daemon heartbeats, suspicion scoring, drain lifecycle.

The heartbeat tests assert on *structured* payloads and ``repro.obs``
instruments only — no daemon log parsing anywhere (ISSUE 9 satellite).
"""

import pytest

from repro.apps import ComputeSleep
from repro.core import (AppSpec, CheckpointConfig, FaultPolicy,
                        StarfishCluster)
from repro.fleet import (FleetController, FleetView, NodeHealth,
                         SuspicionConfig, SuspicionScorer)
from repro.obs import MetricsRegistry, to_prometheus


# ---------------------------------------------------------------------------
# daemon heartbeats (structured, through repro.obs)
# ---------------------------------------------------------------------------

def test_daemon_heartbeat_payload_and_instruments():
    sf = StarfishCluster.build(nodes=3)
    sf.submit(AppSpec(program=ComputeSleep, nprocs=2,
                      params={"steps": 40, "step_time": 0.05},
                      ft_policy=FaultPolicy.RESTART,
                      placement={0: "n0", 1: "n1"}))
    sf.engine.run(until=sf.engine.now + 0.5)
    daemon = next(d for d in sf.live_daemons()
                  if d.node.node_id == "n0")
    payload = daemon.heartbeat()
    assert payload["node"] == "n0"
    assert payload["ranks"] == 1
    assert payload["apps"] and payload["time"] == sf.engine.now
    assert payload["epoch"] >= 0

    # The same numbers are queryable as instruments — no log parsing.
    metrics = sf.engine.metrics
    sent = metrics.group_by("daemon.heartbeat.sent", "node")
    assert sent.get("n0", 0) >= 1
    ranks = metrics.group_by("daemon.heartbeat.ranks", "node")
    assert ranks["n0"] == 1
    daemon.heartbeat()
    assert metrics.group_by("daemon.heartbeat.sent", "node")["n0"] >= 2


def test_heartbeat_membership_counters():
    sf = StarfishCluster.build(nodes=3)
    sf.engine.run(until=sf.engine.now + 1.0)
    sf.cluster.crash_node("n2")
    sf.engine.run(until=sf.engine.now + 3.0)
    left = sf.engine.metrics.group_by("daemon.membership.left", "node")
    assert any(v >= 1 for v in left.values())


# ---------------------------------------------------------------------------
# FleetView bookkeeping
# ---------------------------------------------------------------------------

def test_view_observe_refresh_and_missed_beats():
    view = FleetView(period=0.25)
    view.observe({"node": "n0", "ranks": 2, "copies": 1,
                  "apps": ["a"], "store_bytes": 64, "epoch": 3}, 1.0)
    info = view.row("n0")
    assert (info.ranks, info.copies, info.store_bytes) == (2, 1, 64)
    view.refresh(1.25, down_nodes=())
    assert info.missed == 0                   # exactly one period old
    view.refresh(2.0, down_nodes=())
    assert info.missed == 3                   # three periods of silence
    view.refresh(2.0, down_nodes=("n0",))
    assert info.health is NodeHealth.DOWN
    assert info.ranks == 0
    # A heartbeat after reboot returns the node to service.
    view.observe({"node": "n0"}, 3.0)
    assert info.health is NodeHealth.ACTIVE
    assert "n0" in view.eligible()


def test_eligible_excludes_everything_but_active():
    view = FleetView()
    for i, health in enumerate(NodeHealth):
        info = view.row(f"n{i}")
        info.health = health
    view.row("n9").suspect = True
    assert view.eligible() == ["n0"]          # ACTIVE and not suspect


# ---------------------------------------------------------------------------
# suspicion scoring
# ---------------------------------------------------------------------------

def test_suspicion_from_fault_events():
    registry = MetricsRegistry()
    view = FleetView()
    for n in ("n0", "n1"):
        view.observe({"node": n}, 0.0)
    scorer = SuspicionScorer(registry)
    registry.events.emit(1.0, "fault.inject", action="disk-slowdown",
                         nodes="n1", factor=6.0)
    scorer.update(view)
    cfg = scorer.config
    assert view.row("n1").suspicion == cfg.w_disk
    assert view.row("n1").suspect            # w_disk >= threshold
    assert not view.row("n0").suspect
    # Fabric-wide loss alone stays below the threshold (not one sick
    # node), but stacks on top of per-node signals.
    registry.events.emit(2.0, "fault.inject", action="frame-loss",
                         fabric="tcp-ethernet", prob=0.05)
    scorer.update(view)
    assert view.row("n0").suspicion == cfg.w_loss
    assert not view.row("n0").suspect
    assert view.row("n1").suspicion == min(1.0, cfg.w_disk + cfg.w_loss)
    # End events clear both signals.
    registry.events.emit(3.0, "fault.inject", action="disk-slowdown-end",
                         nodes="n1")
    registry.events.emit(3.0, "fault.inject", action="frame-loss-end",
                         fabric="tcp-ethernet")
    scorer.update(view)
    assert view.row("n1").suspicion == 0.0
    assert not view.row("n1").suspect


def test_suspicion_from_missed_heartbeats_and_down_nodes():
    view = FleetView(period=0.25)
    view.observe({"node": "n0"}, 0.0)
    view.observe({"node": "n1"}, 0.0)
    view.refresh(1.0, down_nodes=("n1",))     # n0 silent for 3 periods
    scorer = SuspicionScorer(
        MetricsRegistry(), SuspicionConfig(w_missed=0.2, threshold=0.5))
    scorer.update(view)
    assert view.row("n0").suspicion == pytest.approx(0.6)   # 3 x 0.2
    assert view.row("n0").suspect
    assert view.row("n1").suspicion == 1.0    # down is certainty
    assert view.row("n1").suspect


def test_suspicion_survives_event_log_ring_wrap():
    """Regression: the scorer's incremental cursor must be an emission
    seq, not a position into ``records()``.  Once the bounded event log
    wraps, list positions shift under a positional cursor and fresh
    ``fault.inject`` events land *before* it — the old code skipped the
    ``disk-slowdown-end`` below and left n1 suspect forever."""
    registry = MetricsRegistry(event_log_capacity=8)
    view = FleetView()
    for n in ("n0", "n1"):
        view.observe({"node": n}, 0.0)
    scorer = SuspicionScorer(registry)
    registry.events.emit(1.0, "fault.inject", action="disk-slowdown",
                         nodes="n1", factor=6.0)
    scorer.update(view)
    assert view.row("n1").suspect
    # Unrelated traffic rotates the slowdown event out of the ring, so
    # every retained fault.inject position is below the old cursor.
    for i in range(20):
        registry.events.emit(1.5, "app.restart", app=f"a{i}")
    registry.events.emit(2.0, "fault.inject", action="disk-slowdown-end",
                         nodes="n1")
    scorer.update(view)
    assert view.row("n1").suspicion == 0.0
    assert not view.row("n1").suspect


def test_suspicion_ignores_reprocessed_events_after_wrap():
    """The dual hazard: retained-but-already-seen events must not be
    double counted when the ring shifts them to new positions (a
    re-folded ``frame-loss`` would push the depth to 2 and one ``-end``
    would no longer clear it)."""
    registry = MetricsRegistry(event_log_capacity=8)
    view = FleetView()
    view.observe({"node": "n0"}, 0.0)
    scorer = SuspicionScorer(registry)
    registry.events.emit(1.0, "fault.inject", action="frame-loss",
                         fabric="tcp-ethernet", prob=0.05)
    scorer.update(view)
    assert scorer._loss_depth == 1
    registry.events.emit(1.5, "app.restart", app="a0")   # shifts positions
    scorer.update(view)
    assert scorer._loss_depth == 1                       # not re-counted
    registry.events.emit(2.0, "fault.inject", action="frame-loss-end",
                         fabric="tcp-ethernet")
    scorer.update(view)
    assert scorer._loss_depth == 0
    assert view.row("n0").suspicion == 0.0


def test_suspicion_empty_nodes_field_adds_no_phantom_node():
    """Regression: a fault event with an empty/missing ``nodes`` field
    must not register the phantom node ``""`` as slow (``"".split(",")``
    == ``[""]``) — it can never be cleared by a well-formed end event."""
    registry = MetricsRegistry()
    view = FleetView()
    view.observe({"node": "n0"}, 0.0)
    scorer = SuspicionScorer(registry)
    registry.events.emit(1.0, "fault.inject", action="disk-slowdown",
                         nodes="", factor=2.0)
    registry.events.emit(1.0, "fault.inject", action="disk-slowdown",
                         factor=2.0)                     # field absent
    scorer.update(view)
    assert scorer._slow_disks == set()
    # And a CSV with a trailing comma only names real nodes.
    registry.events.emit(2.0, "fault.inject", action="disk-slowdown",
                         nodes="n0,", factor=2.0)
    scorer.update(view)
    assert scorer._slow_disks == {"n0"}


# ---------------------------------------------------------------------------
# drain lifecycle through the controller
# ---------------------------------------------------------------------------

def test_drain_state_machine_on_live_cluster():
    sf = StarfishCluster.build(nodes=4)
    controller = FleetController(sf, auto_drain=False)
    handle = sf.submit(AppSpec(
        program=ComputeSleep, nprocs=2,
        params={"steps": 200, "step_time": 0.05, "state_bytes": 1024},
        ft_policy=FaultPolicy.RESTART,
        checkpoint=CheckpointConfig(protocol="stop-and-sync", level="vm",
                                    interval=0.4),
        placement={0: "n0", 1: "n2"}))
    sf.engine.run(until=sf.engine.now + 1.0)
    controller.drain("n2")
    assert controller.view.row("n2").health is NodeHealth.DRAINING
    assert "n2" not in controller.view.eligible()
    sf.engine.run(until=sf.engine.now + 4.0)
    # cordon -> proactive-migrate -> confirm-empty.
    assert controller.view.row("n2").health is NodeHealth.DRAINED
    assert controller.migrations and \
        controller.migrations[0][3] == "n2"
    record = handle._record()
    assert "n2" not in record.placement.values()
    # Operator drains never auto-uncordon; explicit uncordon does.
    controller.uncordon("n2")
    assert controller.view.row("n2").health is NodeHealth.ACTIVE
    sf.run_to_completion(handle, timeout=300)


# ---------------------------------------------------------------------------
# RegistryView (per-tenant metric filtering)
# ---------------------------------------------------------------------------

def test_registry_view_filters_by_label():
    registry = MetricsRegistry()
    registry.counter("fleet.jobs_submitted", tenant="acme").inc(3)
    registry.counter("fleet.jobs_submitted", tenant="globex").inc(5)
    registry.counter("fleet.jobs_admitted", tenant="acme").inc(2)
    view = registry.view(tenant="acme")
    flat = view.collect()
    assert flat and all("tenant=acme" in key for key in flat)
    assert sum(v for k, v in flat.items()
               if k.startswith("fleet.jobs_submitted")) == 3
    text = to_prometheus(view)
    assert 'tenant="acme"' in text and 'tenant="globex"' not in text
