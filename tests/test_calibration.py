"""Unit tests for the calibration models (DESIGN.md §6)."""

import math

import pytest

from repro import calibration as cal


def test_layer_costs_sum():
    assert cal.BIP_LAYERS.one_way_fixed == pytest.approx(
        sum(cal.BIP_LAYERS.as_dict().values()))
    assert cal.TCP_LAYERS.one_way_fixed == pytest.approx(
        sum(cal.TCP_LAYERS.as_dict().values()))


def test_one_byte_rtt_anchors():
    assert 2 * cal.one_way_time(cal.BIP_LAYERS, cal.BIP_BANDWIDTH, 1) == \
        pytest.approx(cal.RTT_1BYTE_BIP, rel=1e-3)
    assert 2 * cal.one_way_time(cal.TCP_LAYERS, cal.TCP_BANDWIDTH, 1) == \
        pytest.approx(cal.RTT_1BYTE_TCP, rel=1e-3)


def test_sync_residual_hits_anchors_exactly():
    for n, total in cal.FIG3_ANCHORS.items():
        res = cal.sync_residual(n, cal.FIG3_ANCHORS,
                                cal.NATIVE_EMPTY_IMAGE,
                                cal.NATIVE_DISK_BANDWIDTH)
        write = cal.NATIVE_EMPTY_IMAGE / cal.NATIVE_DISK_BANDWIDTH
        assert res + write == pytest.approx(total)


def test_sync_residual_interpolates_and_extrapolates():
    args = (cal.FIG3_ANCHORS, cal.NATIVE_EMPTY_IMAGE,
            cal.NATIVE_DISK_BANDWIDTH)
    r1 = cal.sync_residual(1, *args)
    r2 = cal.sync_residual(2, *args)
    r3 = cal.sync_residual(3, *args)
    r4 = cal.sync_residual(4, *args)
    r8 = cal.sync_residual(8, *args)
    assert r1 < r3 < r4 < r8          # monotone through and beyond anchors
    assert r2 < r3 < r4               # 3 nodes between the 2- and 4-anchors
    # log2-piecewise: 3 nodes sits at log2(3) between the anchors.
    frac = (math.log2(3) - 1) / (2 - 1)
    assert r3 == pytest.approx(r2 + frac * (r4 - r2))


def test_sync_residual_rejects_zero_nodes():
    with pytest.raises(ValueError):
        cal.sync_residual(0, cal.FIG3_ANCHORS, cal.NATIVE_EMPTY_IMAGE,
                          cal.NATIVE_DISK_BANDWIDTH)


def test_checkpoint_time_models_monotone():
    assert cal.native_checkpoint_time(0, 1) < \
        cal.native_checkpoint_time(10**6, 1) < \
        cal.native_checkpoint_time(10**7, 1)
    assert cal.vm_checkpoint_time(10**6, 1) < \
        cal.vm_checkpoint_time(10**6, 2) < \
        cal.vm_checkpoint_time(10**6, 4)


def test_vm_faster_and_smaller_than_native():
    # Same payload: the VM path writes less data at a higher bandwidth.
    assert cal.vm_checkpoint_time(10 * cal.MB, 2) < \
        cal.native_checkpoint_time(10 * cal.MB, 2) / 3
    assert 0 < cal.VM_PAYLOAD_FACTOR < 1


def test_protocol_round_estimate_shape():
    e1 = cal.protocol_round_estimate(1)
    e2 = cal.protocol_round_estimate(2)
    e4 = cal.protocol_round_estimate(4)
    e8 = cal.protocol_round_estimate(8)
    assert e1 == cal.PROTOCOL_ROUND_ANCHORS[1]
    assert e2 == cal.PROTOCOL_ROUND_ANCHORS[2]
    assert e4 == cal.PROTOCOL_ROUND_ANCHORS[4]
    assert e8 > e4
    # Residual minus round estimate never goes negative in the barrier.
    from repro.ckpt.protocols.stop_and_sync import commit_barrier_cost
    for level in ("native", "vm"):
        for n in (1, 2, 3, 4, 6, 8):
            assert commit_barrier_cost(level, n) >= 0


def test_header_constant_consistency():
    from repro.mpi.constants import MSG_HEADER
    assert MSG_HEADER == cal.DATA_HEADER
