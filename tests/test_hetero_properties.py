"""Hypothesis property tests: representation round-trips across every pair
of Table 2 architectures, for arbitrary state trees."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.cluster import TABLE2_MACHINES
from repro.hetero import decode, encode

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(1 << 80), max_value=1 << 80),
    st.floats(allow_nan=False),  # NaN breaks == comparison; tested separately
    st.text(max_size=20),
    st.binary(max_size=20),
)

np_arrays = st.one_of(
    arrays(np.float64, st.integers(0, 8),
           elements=st.floats(allow_nan=False, width=64)),
    arrays(np.int32, st.tuples(st.integers(0, 4), st.integers(0, 4)),
           elements=st.integers(-2**31, 2**31 - 1)),
)

state_trees = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.tuples(children, children),
        st.dictionaries(st.text(max_size=8), children, max_size=5),
    ),
    max_leaves=20,
)

arch_pairs = st.tuples(st.sampled_from(TABLE2_MACHINES),
                       st.sampled_from(TABLE2_MACHINES))


def deep_equal(a, b):
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (isinstance(a, np.ndarray) and isinstance(b, np.ndarray)
                and a.dtype == b.dtype and np.array_equal(a, b))
    if isinstance(a, dict) and isinstance(b, dict):
        return (a.keys() == b.keys()
                and all(deep_equal(a[k], b[k]) for k in a))
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return (type(a) is type(b) and len(a) == len(b)
                and all(deep_equal(x, y) for x, y in zip(a, b)))
    if isinstance(a, float) and isinstance(b, float):
        return np.float64(a).tobytes() == np.float64(b).tobytes()
    return type(a) is type(b) and a == b


@settings(max_examples=150, deadline=None)
@given(value=state_trees, pair=arch_pairs)
def test_roundtrip_any_tree_any_arch_pair(value, pair):
    src, dst = pair
    out = decode(encode(value, src), dst)
    assert deep_equal(value, out.value)
    if src.same_representation(dst):
        # Identical representation must never report a conversion...
        # unless integer boxing promotion happened (only across word sizes,
        # impossible here).
        assert not out.converted


@settings(max_examples=60, deadline=None)
@given(arr=np_arrays, pair=arch_pairs)
def test_roundtrip_arrays(arr, pair):
    src, dst = pair
    out = decode(encode(arr, src), dst).value
    assert out.dtype == arr.dtype
    assert out.shape == arr.shape
    assert np.array_equal(out, arr)


@settings(max_examples=60, deadline=None)
@given(value=state_trees, pair=arch_pairs)
def test_encode_is_deterministic(value, pair):
    src, _ = pair
    assert encode(value, src) == encode(value, src)


@settings(max_examples=60, deadline=None)
@given(v=st.integers(min_value=-(1 << 62), max_value=(1 << 62) - 1))
def test_int_roundtrip_all_pairs(v):
    for src in TABLE2_MACHINES:
        blob = encode(v, src)
        for dst in TABLE2_MACHINES:
            assert decode(blob, dst).value == v
