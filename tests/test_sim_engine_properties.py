"""Property-based tests of the event-kernel ordering guarantees.

The engine promises a *total* dispatch order over ``(time, priority,
sequence)`` — randomized schedules here pin that contract independently of
the hand-written unit tests, so hot-path rewrites of the dispatch loop
(see :mod:`repro.sim.engine`) cannot silently weaken it.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim import Engine
from repro.sim.engine import NORMAL, URGENT
from repro.sim.events import Timeout

# A schedule entry: (delay-index into a small grid, urgent?).  Using a
# coarse delay grid forces many same-instant collisions, which is where
# ordering bugs hide.
entry = st.tuples(st.integers(0, 4), st.booleans())


def _schedule(eng, entries):
    """Schedule one timeout per entry; returns the list of scheduled
    (time, priority, seq) keys in creation order."""
    keys = []
    for delay_i, urgent in entries:
        delay = delay_i * 0.25
        if urgent:
            # A pre-triggered event scheduled urgent with a delay (the
            # shape GCS-style control events take on the heap).
            ev = eng.event()
            ev._ok = True
            ev._value = None
            eng._enqueue(ev, URGENT, delay=delay)
        else:
            ev = Timeout(eng, delay)
        keys.append((eng._now + delay,
                     URGENT if urgent else NORMAL,
                     eng._seq))
        ev.callbacks.append(
            lambda e, k=keys[-1]: fired.append(k))
    return keys


@settings(max_examples=50, deadline=None)
@given(entries=st.lists(entry, min_size=1, max_size=40))
def test_dispatch_follows_time_priority_seq_total_order(entries):
    """Events fire exactly in sorted (time, priority, seq) order."""
    global fired
    fired = []
    eng = Engine()
    keys = _schedule(eng, entries)
    eng.run()
    assert fired == sorted(keys)
    assert len(fired) == len(entries)


@settings(max_examples=50, deadline=None)
@given(entries=st.lists(entry, min_size=2, max_size=40))
def test_equal_instant_equal_priority_is_fifo(entries):
    """At one (time, priority) bucket, creation order is dispatch order."""
    global fired
    fired = []
    eng = Engine()
    _schedule(eng, entries)
    eng.run()
    buckets = {}
    for t, prio, seq in fired:
        buckets.setdefault((t, prio), []).append(seq)
    for seqs in buckets.values():
        assert seqs == sorted(seqs)


@settings(max_examples=50, deadline=None)
@given(entries=st.lists(entry, min_size=1, max_size=40),
       step_count=st.integers(1, 8))
def test_peek_is_monotone_under_stepping(entries, step_count):
    """peek() never decreases as events are consumed, and always bounds
    the clock from above."""
    global fired
    fired = []
    eng = Engine()
    _schedule(eng, entries)
    last_peek = eng.peek()
    while eng._queue:
        assert eng.peek() >= last_peek
        assert eng.peek() >= eng.now
        last_peek = eng.peek()
        eng.step()
        assert eng.now == last_peek
    assert eng.peek() == float("inf")


@settings(max_examples=50, deadline=None)
@given(entries=st.lists(entry, min_size=1, max_size=30),
       cuts=st.lists(st.integers(0, 4), min_size=1, max_size=6))
def test_no_time_travel_across_interleaved_runs(entries, cuts):
    """Interleaved run(until=t) calls: the clock is monotone, reaches
    each deadline exactly, and the dispatch order is the same total
    order an uninterrupted run would produce."""
    global fired
    fired = []
    eng = Engine()
    keys = _schedule(eng, entries)

    deadlines = sorted(c * 0.25 for c in cuts)
    last_now = 0.0
    for t in deadlines:
        eng.run(until=t)
        assert eng.now == t
        assert eng.now >= last_now
        # Everything due strictly before the deadline has fired...
        assert all(k[0] <= t for k in fired)
        # ...and nothing due at or before it is still queued.
        assert eng.peek() > t
        last_now = eng.now
    eng.run()
    assert fired == sorted(keys)


def test_run_until_past_deadline_rejected():
    eng = Engine()
    Timeout(eng, 5.0)
    eng.run(until=3.0)
    with pytest.raises(SimulationError):
        eng.run(until=1.0)


@settings(max_examples=30, deadline=None)
@given(entries=st.lists(entry, min_size=1, max_size=20))
def test_step_and_run_agree(entries):
    """Stepping one event at a time produces the identical dispatch order
    as the inlined run() loop — step() is the reference implementation."""
    global fired
    fired = []
    eng = Engine()
    _schedule(eng, entries)
    while eng._queue:
        eng.step()
    by_step = list(fired)

    fired = []
    eng2 = Engine()
    _schedule(eng2, entries)
    eng2.run()
    assert fired == by_step
