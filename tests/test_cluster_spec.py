"""ClusterSpec: the single construction surface of Engine/Cluster/Starfish."""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.core import StarfishCluster
from repro.gcs import GcsConfig
from repro.sim.engine import Engine


def test_spec_defaults_and_validation():
    spec = ClusterSpec()
    assert spec.nodes == 4 and spec.seed == 0 and spec.loss_prob == 0.0
    with pytest.raises(ValueError):
        ClusterSpec(nodes=0)
    with pytest.raises(ValueError):
        ClusterSpec(loss_prob=1.0)
    with pytest.raises(ValueError):
        ClusterSpec(loss_prob=-0.1)


def test_spec_is_frozen_and_with_copies():
    spec = ClusterSpec(nodes=2)
    with pytest.raises(Exception):
        spec.nodes = 3
    other = spec.with_(nodes=8, seed=5)
    assert (other.nodes, other.seed) == (8, 5)
    assert (spec.nodes, spec.seed) == (2, 0)


def test_spec_fields_are_keyword_only():
    with pytest.raises(TypeError):
        ClusterSpec(8)


def test_mixing_spec_and_legacy_kwargs_is_an_error():
    with pytest.raises(TypeError, match="not both"):
        Cluster.build(nodes=3, spec=ClusterSpec())
    with pytest.raises(TypeError, match="not both"):
        StarfishCluster.build(seed=1, spec=ClusterSpec())


def test_engine_from_spec():
    eng = Engine.from_spec(ClusterSpec(seed=9, telemetry=False))
    assert eng.rng.master_seed == 9
    eng2 = Engine.from_spec(ClusterSpec(seed=9))
    # Same seed, same named streams.
    assert (eng.rng.stream("x").integers(1000)
            == eng2.rng.stream("x").integers(1000))


def test_cluster_build_from_spec():
    cluster = Cluster.build(spec=ClusterSpec(nodes=3, seed=2))
    assert sorted(cluster.nodes) == ["n0", "n1", "n2"]
    assert cluster.engine.rng.master_seed == 2
    assert cluster.spec.nodes == 3


def test_cluster_build_legacy_kwargs_still_work():
    cluster = Cluster.build(nodes=2, seed=7)
    assert sorted(cluster.nodes) == ["n0", "n1"]
    assert cluster.spec == ClusterSpec(nodes=2, seed=7)


def test_starfish_build_from_spec_carries_gcs_config_and_settle():
    cfg = GcsConfig(heartbeat_period=0.07)
    sf = StarfishCluster.build(spec=ClusterSpec(nodes=2, gcs_config=cfg))
    assert sf.gcs_config.heartbeat_period == 0.07
    assert len(sf.live_daemons()) == 2
    assert sf.any_daemon().gm.view is not None  # settled by default


def test_spec_loss_prob_routes_through_injector():
    cluster = Cluster.build(spec=ClusterSpec(nodes=2, loss_prob=0.25))
    assert cluster.ethernet.loss_prob == 0.25
    assert cluster.myrinet.loss_prob == 0.25
    # The ambient loss is logged as a fault action on the one injector.
    assert [(n, d["prob"]) for _t, n, d in cluster.faults.log] == \
        [("frame-loss", 0.25)]
