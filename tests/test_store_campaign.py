"""The store-crash-burst campaign: CheckpointSurvivability(k) end to end."""

import pytest

from repro.cli import main
from repro.cluster.spec import ClusterSpec
from repro.faults import (CampaignRunner, CheckpointSurvivability,
                          get_campaign)

PROTOCOLS = ("stop-and-sync", "chandy-lamport", "uncoordinated", "diskless")


def test_campaign_is_registered_with_replicated_spec_and_checker():
    campaign = get_campaign("store-crash-burst")
    assert campaign.cluster_spec.replication_factor == 2
    assert any(isinstance(c, CheckpointSurvivability)
               for c in campaign.checkers)


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_crash_burst_is_green_under_every_protocol(protocol):
    """Crashing any k-1 replica holders between commit and restart must
    leave the latest committed line restorable — for all four C/R
    protocols running over the k=2 store."""
    report = CampaignRunner("store-crash-burst", seed=3,
                            protocol=protocol, policy="restart").run()
    assert report.ok, report.summary()
    assert report.data["app"]["results"] == report.data["golden"]
    surv = [c for c in report.data["checks"]
            if c["checker"] == "checkpoint-survivability"]
    assert surv and all(not c["violations"] for c in surv)


def test_k1_guard_the_same_campaign_loses_the_line():
    """With replication stripped to k=1 the identical crash schedule
    demonstrably breaks the survivability contract: the checker is
    vacuous (1 crash >= k), and the store has to fall back — the crash
    wipes the victim's only copies, so at some convergence point the
    latest committed version is NOT restorable."""
    runner = CampaignRunner("store-crash-burst", seed=3,
                            protocol="stop-and-sync", policy="restart",
                            cluster_spec=ClusterSpec(replication_factor=1),
                            checkers=(CheckpointSurvivability(k=2),))
    report = runner.run()
    # the workload still finishes (restart falls back to an older line or
    # version 0), but the k=2 contract is violated along the way
    assert report.data["status"] == "completed"
    assert report.violations, report.summary()
    msgs = [v for c in report.violations for v in c["violations"]]
    assert any("not restorable" in m for m in msgs)


def test_replicated_campaign_reports_are_seed_stable():
    r1 = CampaignRunner("store-crash-burst", seed=5,
                        protocol="chandy-lamport").run()
    r2 = CampaignRunner("store-crash-burst", seed=5,
                        protocol="chandy-lamport").run()
    assert r1.ok
    assert r1.to_json() == r2.to_json()


def test_placement_policy_variants_run_green():
    for policy in ("random", "partition-aware"):
        spec = ClusterSpec(replication_factor=2, placement_policy=policy)
        report = CampaignRunner("store-crash-burst", seed=2,
                                protocol="stop-and-sync",
                                cluster_spec=spec).run()
        assert report.ok, (policy, report.summary())


def test_cli_chaos_store_crash_burst_green(capsys):
    rc = main(["chaos", "--campaign", "store-crash-burst", "--seed", "3",
               "--protocol", "stop-and-sync", "--policy", "restart"])
    assert rc == 0
    assert "store-crash-burst" in capsys.readouterr().out


def test_cli_store_dumps_placement_replicas_repair(capsys):
    rc = main(["store", "--nodes", "5", "--k", "2", "--seed", "3",
               "--crash"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "placement policy=ring k=2" in out
    assert "replica map" in out and "holders=" in out
    assert "repair:" in out and "kicks=" in out
