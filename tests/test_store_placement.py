"""Placement policies of the replicated checkpoint store."""

import pytest

from repro.cluster.spec import PLACEMENT_POLICIES, ClusterSpec
from repro.errors import CheckpointError
from repro.sim.engine import Engine
from repro.store import (PartitionAwarePlacement, POLICIES, RandomPlacement,
                         RingPlacement, make_placement, rotating_mirrors)


def _legacy_buddies(peers, rank, version):
    """The historical diskless mirror rule, verbatim (pre-extraction)."""
    peers = sorted(peers)
    if len(peers) < 2:
        return []
    idx = peers.index(rank)
    stride = 1 + (version - 1) % (len(peers) - 1)
    first = peers[(idx + stride) % len(peers)]
    out = [first]
    if len(peers) > 2:
        second = peers[(idx + stride + 1) % len(peers)]
        if second == rank:
            second = peers[(idx + stride + 2) % len(peers)]
        if second != first:
            out.append(second)
    return out


def test_rotating_mirrors_reproduces_legacy_diskless_choice():
    for n in (2, 3, 4, 5, 7, 9):
        peers = list(range(n))
        for rank in peers:
            for version in range(1, 3 * n):
                assert rotating_mirrors(peers, rank, version) == \
                    _legacy_buddies(peers, rank, version), \
                    f"n={n} rank={rank} v={version}"


def test_rotating_mirrors_edges():
    assert rotating_mirrors([3], 3, 1) == []
    assert rotating_mirrors([1, 2], 1, 5, copies=0) == []
    # copies beyond the ring: every other peer, self excluded, no dupes.
    out = rotating_mirrors([0, 1, 2, 3], 2, 2, copies=10)
    assert sorted(out) == [0, 1, 3] and 2 not in out
    # unsorted input is normalized.
    assert rotating_mirrors([4, 0, 2], 0, 1) == rotating_mirrors([0, 2, 4],
                                                                 0, 1)


def test_rotating_mirrors_consecutive_versions_rotate():
    peers = list(range(5))
    for rank in peers:
        sets = [tuple(rotating_mirrors(peers, rank, v)) for v in (1, 2, 3)]
        assert len(set(sets)) == 3


def test_ring_placement_successors_and_wrap():
    ring = RingPlacement()
    cands = ["n0", "n1", "n3", "n4"]
    assert ring.replicas(("a", 0, 1), "n2", cands, 2) == ["n3"]
    assert ring.replicas(("a", 0, 1), "n2", cands, 3) == ["n3", "n4"]
    # wrap past the end of the ring
    assert ring.replicas(("a", 0, 1), "n4", ["n0", "n1", "n2"], 2) == ["n0"]
    # k=1 means no extra copies; tiny cluster caps the answer
    assert ring.replicas(("a", 0, 1), "n0", ["n1"], 1) == []
    assert ring.replicas(("a", 0, 1), "n0", ["n1"], 4) == ["n1"]


def test_random_placement_is_seed_deterministic():
    cands = [f"n{i}" for i in range(8)]

    def picks(seed):
        rng = Engine(seed=seed).rng.stream("store.place")
        pol = RandomPlacement(rng=rng)
        return [pol.replicas(("a", r, 1), "n8", cands, 3) for r in range(6)]

    first = picks(11)
    assert picks(11) == first                       # same seed, same choices
    assert picks(12) != first                       # different stream
    assert all(len(p) == 2 and "n8" not in p for p in first)
    # without an rng it degrades to the ring rule
    assert RandomPlacement().replicas(("a", 0, 1), "n2", cands, 2) == ["n3"]


def test_partition_aware_placement_filters_unreachable():
    reach = lambda src, dst: dst != "n2"
    pol = PartitionAwarePlacement(reachable=reach)
    cands = ["n0", "n2", "n3"]
    assert pol.replicas(("a", 0, 1), "n1", cands, 3) == ["n3", "n0"]
    # no probe: behaves like ring
    assert PartitionAwarePlacement().replicas(("a", 0, 1), "n1",
                                              cands, 2) == ["n2"]


def test_make_placement_registry():
    assert make_placement("ring").name == "ring"
    assert make_placement("random").name == "random"
    assert make_placement("partition-aware").name == "partition-aware"
    with pytest.raises(CheckpointError, match="unknown placement policy"):
        make_placement("rack-aware")


def test_spec_policy_list_stays_in_sync_with_store():
    # cluster.spec keeps its own literal to avoid importing repro.store
    # at spec-validation time; this is the sync guard.
    assert PLACEMENT_POLICIES == POLICIES


def test_cluster_spec_store_field_validation():
    spec = ClusterSpec(replication_factor=3, placement_policy="random",
                       repair_bandwidth=1e6)
    assert spec.replication_factor == 3
    assert ClusterSpec().replication_factor is None
    with pytest.raises(ValueError):
        ClusterSpec(replication_factor=0)
    with pytest.raises(ValueError):
        ClusterSpec(placement_policy="nope")
    with pytest.raises(ValueError):
        ClusterSpec(repair_bandwidth=0.0)
