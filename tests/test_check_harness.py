"""The repro.check harness: oracles, watchdog diagnoses, sweep, replay."""

import json

import pytest

from repro.check import WaveOracle
from repro.check.harness import CheckRunner
from repro.cli import main
from repro.errors import OracleViolation


# -- WaveOracle unit invariants -------------------------------------------


class _FakeProto:
    name = "fake"


def _oracle():
    o = WaveOracle(_FakeProto())
    o.bind(0)
    return o


def test_oracle_happy_wave_lifecycle():
    o = _oracle()
    o.wave_begin(1)
    o.counts_published(1)
    o.dumped(1)
    o.commit_coordination(1)
    o.committed(1, participating=True)
    assert o._active is None and o._committed == 1
    o.wave_begin(2)           # next wave opens cleanly
    assert o.violations == 0


def test_oracle_rejects_double_dump():
    o = _oracle()
    o.wave_begin(1)
    o.dumped(1)
    with pytest.raises(OracleViolation, match="dump-once"):
        o.dumped(1)
    assert o.violations == 1


def test_oracle_rejects_overlapping_waves():
    o = _oracle()
    o.wave_begin(1)
    with pytest.raises(OracleViolation, match="single-wave"):
        o.wave_begin(2)


def test_oracle_rejects_wave_behind_commit():
    o = _oracle()
    o.wave_begin(1)
    o.dumped(1)
    o.committed(1, participating=True)
    with pytest.raises(OracleViolation, match="version-monotone"):
        o.wave_begin(1)


def test_oracle_rejects_double_counts_in_one_epoch():
    o = _oracle()
    o.wave_begin(1)
    o.counts_published(1)
    with pytest.raises(OracleViolation, match="counts-once"):
        o.counts_published(1)


def test_oracle_allows_counts_again_after_wave_revival():
    o = _oracle()
    o.wave_begin(1)
    o.counts_published(1)
    o.wave_abort(1)
    o.wave_begin(1)           # revival re-opens the same version
    o.counts_published(1)     # fresh epoch, fresh counts
    assert o.violations == 0


def test_oracle_rejects_commit_without_dump_when_participating():
    o = _oracle()
    o.wave_begin(1)
    with pytest.raises(OracleViolation, match="commit-covers-dump"):
        o.committed(1, participating=True)


def test_oracle_allows_commit_without_dump_as_bystander():
    o = _oracle()
    o.committed(3, participating=False)   # joined after the wave
    assert o._committed == 3


def test_oracle_rejects_commit_regression():
    o = _oracle()
    o.committed(2, participating=False)
    with pytest.raises(OracleViolation, match="commit-monotone"):
        o.committed(1, participating=False)


def test_oracle_rejects_double_commit_coordination():
    o = _oracle()
    o.commit_coordination(1)
    with pytest.raises(OracleViolation, match="commit-coordinate-once"):
        o.commit_coordination(1)


def test_oracle_rejects_unbalanced_buddy_ack():
    o = _oracle()
    with pytest.raises(OracleViolation, match="ack-balance"):
        o.buddy_ack(1, 0)


# -- CheckRunner sweep / classification -----------------------------------


def test_sweep_green_campaign_all_ok():
    result = CheckRunner("crash-recover", protocol="stop-and-sync").run(
        seeds=range(1, 4))
    assert result.ok
    assert [o.perturb_seed for o in result.outcomes] == [1, 2, 3]
    assert all(o.verdict == "ok" for o in result.outcomes)
    assert "0 failures" in result.summary()


def test_sweep_runs_report_their_perturbation():
    outcome = CheckRunner("crash-recover",
                          protocol="chandy-lamport").run_one(5)
    assert outcome.ok
    assert outcome.report.data["perturbation"] == {"seed": 5, "jitter": 0.0}


def test_expected_failure_campaign_clean_abort_is_ok():
    outcome = CheckRunner("blackout", protocol="stop-and-sync").run_one(1)
    assert outcome.ok
    assert outcome.status == "aborted"
    assert outcome.error["type"] == "MajorityLost"


def test_hang_verdict_carries_watchdog_diagnosis():
    """A workload that cannot finish in time is diagnosed, not timed out:
    the outcome names each rank's wave, parked-on channel, and progress."""
    runner = CheckRunner("crash-recover", protocol="stop-and-sync",
                         workload_timeout=0.25)
    outcome = runner.run_one(1)
    assert outcome.verdict == "hang"
    diagnosis = outcome.error["diagnosis"]
    assert diagnosis["cause"] == "CampaignError"
    ranks = diagnosis["ranks"]
    assert ranks and all("parked_on" in r for r in ranks
                         if "protocol" in r)
    json.dumps(diagnosis)                 # must ride a JSON report
    # And the failure replays byte-identically from its seed.
    again = runner.run_one(1)
    assert again.report.to_json() == outcome.report.to_json()


def test_oracle_violation_verdict(monkeypatch):
    """An invariant broken mid-run surfaces as a typed oracle-violation
    failure of the whole campaign, never a silent module death."""
    def bad_dumped(self, version):
        self._fail("dump-once", "injected for the harness test")

    monkeypatch.setattr(WaveOracle, "dumped", bad_dumped)
    outcome = CheckRunner("crash-recover",
                          protocol="stop-and-sync").run_one(1)
    assert outcome.verdict == "oracle-violation"
    assert outcome.error["type"] == "OracleViolation"
    assert "dump-once" in outcome.error["message"]
    assert "replay" in CheckRunner("crash-recover").run(
        seeds=[1]).summary()


def test_replay_is_byte_identical():
    runner = CheckRunner("partition-flap", protocol="diskless", jitter=1e-6)
    outcome, identical = runner.replay(4)
    assert identical
    assert outcome.ok


def test_different_perturb_seeds_change_the_schedule():
    runner = CheckRunner("crash-recover", protocol="stop-and-sync")
    a = runner.run_one(1).report.data["engine"]["events_processed"]
    runs = {runner.run_one(s).report.to_json() for s in (1, 2, 3)}
    assert isinstance(a, int)
    assert len(runs) > 1      # at least one seed reorders something


def test_result_json_roundtrip():
    result = CheckRunner("crash-recover").run(seeds=[1])
    data = json.loads(result.to_json())
    assert data["campaign"] == "crash-recover"
    assert data["failures"] == 0
    assert data["outcomes"][0]["verdict"] == "ok"


# -- CLI -------------------------------------------------------------------


def test_cli_check_unknown_campaign():
    assert main(["check", "--campaign", "nope"]) == 2


def test_cli_check_sweep_and_json(tmp_path, capsys):
    out = tmp_path / "check.json"
    rc = main(["check", "--campaign", "crash-recover",
               "--protocol", "stop-and-sync", "--seeds", "2",
               "--json", str(out)])
    assert rc == 0
    assert "0 failures" in capsys.readouterr().out
    payload = json.loads(out.read_text())
    assert payload[0]["seeds_run"] == 2


def test_cli_check_replay(capsys):
    rc = main(["check", "--campaign", "crash-recover",
               "--protocol", "stop-and-sync", "--replay", "3"])
    assert rc == 0
    assert "replay byte-identical: True" in capsys.readouterr().out
