"""Property-based tests of the group-communication guarantees.

Hypothesis drives randomized schedules of casts and crashes; the virtual
synchrony invariants must hold on every schedule:

* total order (common-prefix property) among survivors,
* FIFO per sender,
* no duplicate deliveries,
* survivors converge to the same final view,
* a surviving sender's casts are eventually delivered everywhere.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults import CrashNode

from tests.gcs_helpers import Harness, assert_common_prefix

# Schedules: a list of actions; each action is either
#   ("cast", sender_idx, tag)   or   ("crash", node_idx, at_time)
action = st.one_of(
    st.tuples(st.just("cast"), st.integers(0, 3), st.integers(0, 99)),
    st.tuples(st.just("crash"), st.integers(1, 3)),  # never crash n0
)


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(actions=st.lists(action, min_size=1, max_size=12),
       seed=st.integers(0, 2**16))
def test_invariants_under_random_schedules(actions, seed):
    h = Harness(nodes=4, seed=seed)
    h.boot_all()
    h.run(until=2.0)

    crashed = set()
    sent = {nid: [] for nid in h.members}
    t = 2.0
    for act in actions:
        if act[0] == "cast":
            _, sender_idx, tag = act
            nid = f"n{sender_idx}"
            if nid in crashed:
                continue
            payload = (nid, len(sent[nid]), tag)
            sent[nid].append(payload)
            h.members[nid].cast(payload)
            t += 0.01
            h.run(until=t)
        else:
            _, node_idx = act
            nid = f"n{node_idx}"
            if nid in crashed or len(crashed) >= 2:
                continue  # keep at least two nodes alive
            crashed.add(nid)
            h.cluster.crash_node(nid)
            t += 0.3
            h.run(until=t)

    h.run(until=t + 6.0)
    survivors = [nid for nid in h.members if nid not in crashed]

    # 1. Convergence: all survivors agree on the final view.
    views = {tuple(h.member_ids(nid)) for nid in survivors}
    assert len(views) == 1
    assert set(views.pop()) == set(survivors)

    # 2. Total order among survivors.
    seqs = [h.casts(nid) for nid in survivors]
    assert_common_prefix(seqs)
    # All survivors actually delivered the same *complete* set.
    lens = {len(s) for s in seqs}
    assert len(lens) == 1

    # 3. FIFO per sender + completeness for surviving senders.
    reference = seqs[0]
    for nid in survivors:
        mine = [p for p in reference if p[0] == nid]
        assert mine == sent[nid], f"sender {nid} messages lost or reordered"

    # 4. No duplicates.
    for nid in survivors:
        assert h.members[nid].stats["duplicates"] == 0
        assert len(set(seqs[0])) == len(seqs[0])


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(n_casts=st.integers(1, 15), crash_after=st.integers(0, 14),
       seed=st.integers(0, 2**16))
def test_sender_crash_mid_burst_consistency(n_casts, crash_after, seed):
    """A crashing sender's delivered messages form a FIFO prefix of what it
    sent, identical at all survivors (no partial/duplicated tail)."""
    h = Harness(nodes=3, seed=seed)
    h.boot_all()
    h.run(until=2.0)

    def burst():
        for i in range(n_casts):
            h.members["n2"].cast(("b", i))
            yield h.engine.timeout(0.002)

    h.engine.process(burst())
    h.cluster.faults.at(2.0 + 0.002 * crash_after + 0.001,
                        CrashNode(node="n2"))
    h.run(until=8.0)

    seq0 = [p for p in h.casts("n0") if isinstance(p, tuple)]
    seq1 = [p for p in h.casts("n1") if isinstance(p, tuple)]
    assert seq0 == seq1
    # FIFO prefix of the sender's stream.
    assert seq0 == [("b", i) for i in range(len(seq0))]
    assert len(seq0) <= n_casts
