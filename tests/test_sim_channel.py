"""Unit tests for channels, priority channels, and resources."""

import pytest

from repro.errors import ConnectionClosed, SimulationError
from repro.sim import Channel, Engine, PriorityChannel, Resource


def test_channel_fifo_order():
    eng = Engine()
    ch = Channel(eng, name="c")
    got = []

    def producer():
        for i in range(5):
            yield eng.timeout(1)
            ch.put(i)

    def consumer():
        for _ in range(5):
            item = yield ch.get()
            got.append((eng.now, item))

    eng.process(producer())
    eng.process(consumer())
    eng.run()
    assert [i for _, i in got] == [0, 1, 2, 3, 4]
    assert [t for t, _ in got] == [1, 2, 3, 4, 5]


def test_channel_put_before_get():
    eng = Engine()
    ch = Channel(eng)
    ch.put("a")
    ch.put("b")

    def consumer():
        x = yield ch.get()
        y = yield ch.get()
        return x, y

    assert eng.run(eng.process(consumer())) == ("a", "b")


def test_channel_multiple_getters_served_in_order():
    eng = Engine()
    ch = Channel(eng)
    served = []

    def getter(i):
        item = yield ch.get()
        served.append((i, item))

    for i in range(3):
        eng.process(getter(i))

    def producer():
        yield eng.timeout(1)
        for v in "xyz":
            ch.put(v)

    eng.process(producer())
    eng.run()
    assert served == [(0, "x"), (1, "y"), (2, "z")]


def test_channel_get_nowait():
    eng = Engine()
    ch = Channel(eng)
    assert ch.get_nowait() == (False, None)
    ch.put(9)
    assert ch.get_nowait() == (True, 9)


def test_channel_close_fails_pending_gets():
    eng = Engine()
    ch = Channel(eng)

    def consumer():
        with pytest.raises(ConnectionClosed):
            yield ch.get()
        return "ok"

    def closer():
        yield eng.timeout(1)
        ch.close(ConnectionClosed("peer died"))

    p = eng.process(consumer())
    eng.process(closer())
    assert eng.run(p) == "ok"
    with pytest.raises(SimulationError):
        ch.put(1)


def test_channel_drain_and_peek():
    eng = Engine()
    ch = Channel(eng)
    for i in range(3):
        ch.put(i)
    assert ch.peek_all() == [0, 1, 2]
    assert len(ch) == 3
    assert ch.drain() == [0, 1, 2]
    assert len(ch) == 0


def test_priority_channel_orders_by_priority_then_fifo():
    eng = Engine()
    ch = PriorityChannel(eng)
    ch.put("low-1", priority=5)
    ch.put("high", priority=0)
    ch.put("low-2", priority=5)

    def consumer():
        out = []
        for _ in range(3):
            out.append((yield ch.get()))
        return out

    assert eng.run(eng.process(consumer())) == ["high", "low-1", "low-2"]


def test_priority_channel_peek_all_sorted():
    eng = Engine()
    ch = PriorityChannel(eng)
    ch.put("b", priority=2)
    ch.put("a", priority=1)
    assert ch.peek_all() == ["a", "b"]
    assert ch.drain() == ["a", "b"]
    assert len(ch) == 0


def test_resource_mutual_exclusion():
    eng = Engine()
    disk = Resource(eng, capacity=1, name="disk")
    log = []

    def writer(i):
        req = disk.request()
        yield req
        log.append(("start", i, eng.now))
        yield eng.timeout(10)
        disk.release(req)
        log.append(("end", i, eng.now))

    for i in range(3):
        eng.process(writer(i))
    eng.run()
    assert log == [("start", 0, 0), ("end", 0, 10),
                   ("start", 1, 10), ("end", 1, 20),
                   ("start", 2, 20), ("end", 2, 30)]


def test_resource_capacity_two_overlaps():
    eng = Engine()
    r = Resource(eng, capacity=2)
    done = []

    def worker(i):
        req = r.request()
        yield req
        yield eng.timeout(10)
        r.release(req)
        done.append((i, eng.now))

    for i in range(4):
        eng.process(worker(i))
    eng.run()
    assert done == [(0, 10), (1, 10), (2, 20), (3, 20)]


def test_resource_release_unknown_request_raises():
    eng = Engine()
    r = Resource(eng)
    with pytest.raises(SimulationError):
        r.release(eng.event())


def test_resource_release_queued_request_cancels_it():
    eng = Engine()
    r = Resource(eng, capacity=1)
    first = r.request()
    second = r.request()
    assert not second.triggered
    r.release(second)     # cancel while still queued
    assert r.queued == 0
    r.release(first)
    assert r.in_use == 0


def test_resource_invalid_capacity():
    eng = Engine()
    with pytest.raises(SimulationError):
        Resource(eng, capacity=0)


def test_rng_streams_independent_and_stable():
    eng1 = Engine(seed=42)
    eng2 = Engine(seed=42)
    a1 = eng1.rng.stream("a").integers(0, 1000, 10).tolist()
    # Drawing from another stream must not perturb "a".
    eng2.rng.stream("b").integers(0, 1000, 10)
    a2 = eng2.rng.stream("a").integers(0, 1000, 10).tolist()
    assert a1 == a2


def test_rng_streams_differ_by_seed():
    s1 = Engine(seed=1).rng.stream("x").integers(0, 10**9)
    s2 = Engine(seed=2).rng.stream("x").integers(0, 10**9)
    assert s1 != s2


# -- channel edge semantics (pinned for the hot-path overhaul) ------------


def test_channel_close_with_items_queued_still_drains():
    """close() fails *getters*, not *items*: queued items stay readable."""
    eng = Engine()
    ch = Channel(eng)
    ch.put("a")
    ch.put("b")
    ch.close(ConnectionClosed("peer died"))
    assert ch.closed
    assert ch.peek_all() == ["a", "b"]

    def consumer():
        first = yield ch.get()
        second = yield ch.get()
        return first, second

    assert eng.run(eng.process(consumer())) == ("a", "b")


def test_channel_get_after_close_and_drain_fails():
    """Once closed *and* empty, get() fails with the close exception."""
    eng = Engine()
    ch = Channel(eng)
    ch.put("last")
    ch.close(ConnectionClosed("peer died"))

    def consumer():
        got = yield ch.get()
        assert got == "last"
        with pytest.raises(ConnectionClosed):
            yield ch.get()
        return "done"

    assert eng.run(eng.process(consumer())) == "done"


def test_channel_put_skips_interrupted_getter():
    """An interrupted getter must not swallow the item — it goes to the
    next live getter instead."""
    from repro.errors import Interrupt

    eng = Engine()
    ch = Channel(eng)
    got = []

    def victim():
        try:
            got.append(("victim", (yield ch.get())))
        except Interrupt:
            got.append(("victim", "interrupted"))

    def survivor():
        got.append(("survivor", (yield ch.get())))

    p1 = eng.process(victim())
    eng.process(survivor())

    def director():
        yield eng.timeout(1)
        p1.interrupt()
        yield eng.timeout(1)
        ch.put("payload")

    eng.process(director())
    eng.run()
    assert ("victim", "interrupted") in got
    assert ("survivor", "payload") in got
    assert not ch._getters


def test_channel_put_with_no_live_getters_queues_item():
    """If every waiting getter was interrupted, the item is queued."""
    from repro.errors import Interrupt

    eng = Engine()
    ch = Channel(eng)

    def victim():
        try:
            yield ch.get()
        except Interrupt:
            pass

    p = eng.process(victim())

    def director():
        yield eng.timeout(1)
        p.interrupt()
        yield eng.timeout(1)
        ch.put("kept")

    eng.process(director())
    eng.run()
    assert ch.peek_all() == ["kept"]


def test_channel_put_after_close_raises():
    eng = Engine()
    ch = Channel(eng)
    ch.close(ConnectionClosed("gone"))
    with pytest.raises(SimulationError):
        ch.put(1)


def test_priority_channel_close_with_items_queued_still_drains():
    eng = Engine()
    ch = PriorityChannel(eng)
    ch.put("low", priority=5)
    ch.put("high", priority=1)
    ch.close(ConnectionClosed("peer died"))

    def consumer():
        first = yield ch.get()
        second = yield ch.get()
        return first, second

    assert eng.run(eng.process(consumer())) == ("high", "low")


def test_priority_channel_put_skips_interrupted_getter():
    """Mirror of the Channel regression: an interrupted getter on a
    priority channel (the app-process scheduler channel) must not swallow
    the item — a checkpoint request or view-change event would vanish."""
    from repro.errors import Interrupt

    eng = Engine()
    ch = PriorityChannel(eng)
    got = []

    def victim():
        try:
            got.append(("victim", (yield ch.get())))
        except Interrupt:
            got.append(("victim", "interrupted"))

    def survivor():
        got.append(("survivor", (yield ch.get())))

    p1 = eng.process(victim())
    eng.process(survivor())

    def director():
        yield eng.timeout(1)
        p1.interrupt()
        yield eng.timeout(1)
        ch.put("ckpt-request", priority=0)

    eng.process(director())
    eng.run()
    assert ("victim", "interrupted") in got
    assert ("survivor", "ckpt-request") in got
    assert not ch._getters


def test_priority_channel_put_with_no_live_getters_queues_item():
    """If every waiting getter was interrupted, the item is heaped."""
    from repro.errors import Interrupt

    eng = Engine()
    ch = PriorityChannel(eng)

    def victim():
        try:
            yield ch.get()
        except Interrupt:
            pass

    p = eng.process(victim())

    def director():
        yield eng.timeout(1)
        p.interrupt()
        yield eng.timeout(1)
        ch.put("kept", priority=3)

    eng.process(director())
    eng.run()
    assert ch.peek_all() == ["kept"]


def test_channel_put_then_same_instant_interrupt_salvages_item():
    """The deeper interleaving: put() hands the item to a parked getter,
    and the getter is interrupted in the *same instant* before the
    succeeded get event dispatches.  The abandoned event's cargo must be
    salvaged — here it goes to the surviving getter."""
    from repro.errors import Interrupt

    eng = Engine()
    ch = Channel(eng)
    got = []

    def victim():
        try:
            got.append(("victim", (yield ch.get())))
        except Interrupt:
            got.append(("victim", "interrupted"))

    def survivor():
        yield eng.timeout(0.5)          # parks after the victim
        got.append(("survivor", (yield ch.get())))

    p1 = eng.process(victim())
    eng.process(survivor())

    def director():
        yield eng.timeout(1)
        # interrupt() schedules its delivery *before* put() succeeds the
        # victim's get event, so the interrupt dispatches first and
        # abandons an event that already carries the item.
        p1.interrupt()
        ch.put("payload")

    eng.process(director())
    eng.run()
    assert ("victim", "interrupted") in got
    assert ("survivor", "payload") in got


def test_channel_put_then_same_instant_interrupt_requeues_item():
    """Same interleaving with no surviving getter: the salvaged item is
    re-queued at the head instead of vanishing."""
    from repro.errors import Interrupt

    eng = Engine()
    ch = Channel(eng)

    def victim():
        try:
            yield ch.get()
        except Interrupt:
            pass

    p = eng.process(victim())

    def director():
        yield eng.timeout(1)
        p.interrupt()
        ch.put("salvaged")
        ch.put("later")

    eng.process(director())
    eng.run()
    assert ch.peek_all() == ["salvaged", "later"]


def test_priority_channel_same_instant_interrupt_keeps_priority():
    """Priority-channel mirror: the salvaged item re-enters the heap at
    the *front of its priority class*, so a checkpoint request handed to
    an interrupted scheduler getter still outranks background work."""
    from repro.errors import Interrupt

    eng = Engine()
    ch = PriorityChannel(eng)

    def victim():
        try:
            yield ch.get()
        except Interrupt:
            pass

    p = eng.process(victim())

    def director():
        yield eng.timeout(1)
        p.interrupt()
        # The victim is not defused yet (the interrupt only *dispatches*
        # later this instant), so put() hands it "older-urgent" directly;
        # the interrupt then abandons the handed event and the salvaged
        # item must come back ahead of "newer-urgent" in its class.
        ch.put("older-urgent", priority=0)
        ch.put("newer-urgent", priority=0)
        ch.put("background", priority=5)

    eng.process(director())
    eng.run()
    assert ch.peek_all() == ["older-urgent", "newer-urgent", "background"]
    assert ch.drain() == ["older-urgent", "newer-urgent", "background"]


def test_channel_get_nowait_closed_raises_after_drain():
    """get_nowait() mirrors get(): queued items drain first, then the
    close exception surfaces — never an eternal (False, None)."""
    eng = Engine()
    ch = Channel(eng)
    ch.put("last")
    ch.close(ConnectionClosed("peer died"))
    assert ch.get_nowait() == (True, "last")
    with pytest.raises(ConnectionClosed):
        ch.get_nowait()


def test_priority_channel_get_nowait_closed_raises_after_drain():
    eng = Engine()
    ch = PriorityChannel(eng)
    ch.put("last", priority=1)
    ch.close(ConnectionClosed("peer died"))
    assert ch.get_nowait() == (True, "last")
    with pytest.raises(ConnectionClosed):
        ch.get_nowait()


def test_channel_get_nowait_open_empty_still_polls():
    """An *open* empty channel still probes (False, None)."""
    eng = Engine()
    assert Channel(eng).get_nowait() == (False, None)
    assert PriorityChannel(eng).get_nowait() == (False, None)
