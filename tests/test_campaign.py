"""Campaign runner: determinism, typed aborts, and the chaos CLI."""

import json

import pytest

from repro.cli import main
from repro.errors import CampaignError, MajorityLost
from repro.faults import CAMPAIGNS, CampaignRunner, get_campaign


def test_same_seed_reports_are_byte_identical():
    r1 = CampaignRunner("standard", seed=7, protocol="uncoordinated").run()
    r2 = CampaignRunner("standard", seed=7, protocol="uncoordinated").run()
    assert r1.ok and r2.ok
    assert r1.to_json() == r2.to_json()
    # The determinism the ISSUE cares about, spelled out: identical
    # action logs and identical network/restart series.
    assert r1.data["actions"] == r2.data["actions"]
    assert r1.data["series"]["net.frames_dropped"] == \
        r2.data["series"]["net.frames_dropped"]
    assert r1.data["restart_events"] == r2.data["restart_events"]


def test_crash_recover_campaign_matches_golden_run():
    r = CampaignRunner("crash-recover", seed=3, protocol="stop-and-sync",
                       policy="restart").run()
    assert r.ok
    assert r.data["app"]["results"] == r.data["golden"]
    assert any("crash-node" in line for line in r.data["actions"])
    assert any("recover-node" in line for line in r.data["actions"])


def test_majority_kill_raises_typed_error():
    with pytest.raises(MajorityLost):
        CampaignRunner("blackout", seed=0).run()


def test_majority_kill_reports_clean_abort_without_raise():
    r = CampaignRunner("blackout", seed=0).run(raise_on_error=False)
    assert r.status == "aborted"
    assert r.data["error"]["type"] == "MajorityLost"
    assert not r.ok


def test_unknown_campaign_lists_known_names():
    with pytest.raises(CampaignError) as exc:
        get_campaign("nope")
    for name in CAMPAIGNS:
        assert name in str(exc.value)


def test_cli_chaos_unknown_campaign_exits_2(capsys):
    assert main(["chaos", "--campaign", "nope"]) == 2
    assert "unknown campaign" in capsys.readouterr().err


def test_cli_chaos_bad_json_path_exits_1(capsys):
    assert main(["chaos", "--campaign", "crash-recover",
                 "--json", "/no/such/dir/report.json"]) == 1
    assert "cannot write" in capsys.readouterr().err


def test_cli_chaos_green_run_writes_report(tmp_path, capsys):
    out = tmp_path / "report.json"
    rc = main(["chaos", "--campaign", "crash-recover", "--seed", "1",
               "--protocol", "stop-and-sync", "--policy", "restart",
               "--json", str(out)])
    assert rc == 0
    assert "crash-recover" in capsys.readouterr().out
    doc = json.loads(out.read_text())
    assert doc["status"] == "completed"
    assert doc["campaign"] == "crash-recover"
    assert all(not c["violations"] for c in doc["checks"])


def test_cli_chaos_blackout_clean_abort_exits_0(capsys):
    assert main(["chaos", "--campaign", "blackout", "--seed", "0"]) == 0
    assert "MajorityLost" in capsys.readouterr().out
