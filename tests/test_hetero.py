"""Heterogeneous representation: encode/decode across Table 2 machines."""

import numpy as np
import pytest

from repro.cluster import TABLE2_MACHINES, arch_by_name
from repro.errors import RepresentationError, WordSizeOverflow
from repro.hetero import decode, encode, native_heap_nbytes, portable_nbytes

LINUX_X86 = arch_by_name("Intel P-II 350 MHz, i686")       # little, 32
SUN = arch_by_name("Sun Ultra Enterprise 3000")            # big, 32
ALPHA = arch_by_name("Dual Alpha DS20 500 MHz")            # little, 64

SAMPLE = {
    "step": 17,
    "pi": 3.14159,
    "name": "jacobi",
    "done": False,
    "nothing": None,
    "grid": np.arange(12, dtype=np.float64).reshape(3, 4),
    "ranks": [0, 1, 2],
    "meta": {"sizes": (8, 16), "tag": b"\x00\xffdata"},
}


def assert_state_equal(a, b):
    assert sorted(a) == sorted(b)
    for k in a:
        if isinstance(a[k], np.ndarray):
            assert np.array_equal(a[k], b[k]), k
            assert a[k].dtype == b[k].dtype, k
        else:
            assert a[k] == b[k], k


def test_same_arch_roundtrip_no_conversion():
    blob = encode(SAMPLE, LINUX_X86)
    out = decode(blob, LINUX_X86)
    assert_state_equal(SAMPLE, out.value)
    assert not out.converted
    assert out.source_arch_name == LINUX_X86.name
    assert out.endianness == "little"


def test_cross_endian_roundtrip_converts():
    blob = encode(SAMPLE, SUN)          # big-endian source
    out = decode(blob, LINUX_X86)       # little-endian target
    assert_state_equal(SAMPLE, out.value)
    assert out.converted
    assert out.endianness == "big"


def test_cross_wordsize_roundtrip():
    blob = encode(SAMPLE, ALPHA)        # 64-bit source
    out = decode(blob, SUN)             # 32-bit big-endian target
    assert_state_equal(SAMPLE, out.value)
    assert out.converted


@pytest.mark.parametrize("src", TABLE2_MACHINES, ids=lambda a: a.name)
@pytest.mark.parametrize("dst", TABLE2_MACHINES, ids=lambda a: a.name)
def test_table2_full_matrix(src, dst):
    """Table 2: checkpoint on any machine restarts on any machine."""
    blob = encode(SAMPLE, src)
    out = decode(blob, dst)
    assert_state_equal(SAMPLE, out.value)
    assert out.converted == (not src.same_representation(dst))


def test_wide_int_unboxed_on_64_boxed_on_32():
    wide = (1 << 40)  # fits 63-bit unboxed, not 31-bit
    blob = encode({"v": wide}, ALPHA)
    out = decode(blob, LINUX_X86)       # promoted to boxed
    assert out.value["v"] == wide
    assert out.converted
    with pytest.raises(WordSizeOverflow):
        decode(blob, LINUX_X86, strict=True)


def test_huge_int_bigint_path():
    huge = -(1 << 200) + 12345
    blob = encode({"v": huge}, SUN)
    assert decode(blob, ALPHA).value["v"] == huge


def test_float_bit_exactness_across_endianness():
    specials = [0.0, -0.0, 1e-308, float("inf"), float("-inf"), 2.0**-1074]
    blob = encode(specials, SUN)
    out = decode(blob, ALPHA).value
    for orig, got in zip(specials, out):
        assert (np.float64(orig).tobytes() == np.float64(got).tobytes())


def test_nan_survives():
    blob = encode(float("nan"), SUN)
    assert np.isnan(decode(blob, LINUX_X86).value)


@pytest.mark.parametrize("dtype", [np.float64, np.float32, np.int64,
                                   np.int32, np.uint8, np.bool_,
                                   np.complex128])
def test_array_dtypes_roundtrip(dtype):
    rng = np.random.default_rng(0)
    if dtype is np.bool_:
        arr = rng.random(10) > 0.5
    elif np.issubdtype(dtype, np.complexfloating):
        arr = (rng.random(10) + 1j * rng.random(10)).astype(dtype)
    elif np.issubdtype(dtype, np.floating):
        arr = rng.random(10).astype(dtype)
    else:
        arr = rng.integers(0, 100, 10).astype(dtype)
    out = decode(encode(arr, SUN), LINUX_X86).value
    assert np.array_equal(arr, out)
    assert out.dtype == np.dtype(dtype)


def test_unsupported_type_rejected():
    with pytest.raises(RepresentationError):
        encode({"bad": object()}, LINUX_X86)


def test_truncated_blob_rejected():
    blob = encode(SAMPLE, LINUX_X86)
    with pytest.raises(RepresentationError):
        decode(blob[:-3], LINUX_X86)


def test_bad_magic_rejected():
    with pytest.raises(RepresentationError):
        decode(b"XXXX" + b"\x00" * 20, LINUX_X86)


def test_trailing_garbage_rejected():
    blob = encode(1, LINUX_X86) + b"junk"
    with pytest.raises(RepresentationError):
        decode(blob, LINUX_X86)


# ---------------------------------------------------------------------------
# sizes: the paper's Figure 3 vs Figure 4 relationship
# ---------------------------------------------------------------------------

def test_native_dump_larger_than_portable_for_big_payloads():
    big = {"grid": np.zeros(500_000, dtype=np.float64)}  # ~4 MB payload
    native = native_heap_nbytes(big, LINUX_X86)
    portable = portable_nbytes(big, LINUX_X86)
    ratio = portable / native
    # 96/135 ~ 0.71 for array-dominated payloads (calibration).
    assert 0.65 < ratio < 0.78


def test_portable_size_independent_of_source_wordsize_for_arrays():
    arr = {"a": np.zeros(1000, dtype=np.float64)}
    assert abs(portable_nbytes(arr, LINUX_X86)
               - portable_nbytes(arr, ALPHA)) < 64


def test_unboxed_ints_cost_word_bytes():
    small = list(range(100))
    # Subtract the per-arch header (arch/os names differ in length).
    n32 = portable_nbytes(small, LINUX_X86) - portable_nbytes([], LINUX_X86)
    n64 = portable_nbytes(small, ALPHA) - portable_nbytes([], ALPHA)
    # 64-bit words double the per-int storage (tag byte excluded).
    assert n64 - n32 == 100 * 4


def test_native_layout_grows_with_nesting():
    flat = [1.0] * 100
    nested = [[1.0]] * 100
    assert (native_heap_nbytes(nested, LINUX_X86)
            > native_heap_nbytes(flat, LINUX_X86))
