"""Unit tests for fabrics, NICs, and the transport timing model."""

import pytest

from repro.calibration import (BIP_LAYERS, RTT_1BYTE_BIP, RTT_1BYTE_TCP,
                               TCP_LAYERS)
from repro.cluster import Cluster, ClusterSpec
from repro.faults import CrashNode
from repro.errors import NodeDown, Unreachable
from repro.net import BIP_MYRINET, Frame, TCP_ETHERNET
from repro.net.message import MIN_WIRE_SIZE


def make_pair():
    cluster = Cluster.build(nodes=2)
    return cluster, cluster.node("n0"), cluster.node("n1")


def test_transport_one_way_matches_paper_anchors():
    # Fig. 5: 1-byte RTT of 86 us (BIP) and 552 us (TCP) at the app level
    # (including the MPI data header's wire time).
    from repro.calibration import (BIP_BANDWIDTH, TCP_BANDWIDTH,
                                   one_way_time)
    assert 2 * one_way_time(BIP_LAYERS, BIP_BANDWIDTH, 1) == \
        pytest.approx(RTT_1BYTE_BIP, rel=1e-3)
    assert 2 * one_way_time(TCP_LAYERS, TCP_BANDWIDTH, 1) == \
        pytest.approx(RTT_1BYTE_TCP, rel=1e-3)


def test_transport_latency_grows_linearly():
    for spec in (TCP_ETHERNET, BIP_MYRINET):
        t0, t1, t2 = (spec.one_way(s) for s in (0, 10_000, 20_000))
        assert t1 - t0 == pytest.approx(t2 - t1)
        assert t1 > t0


def test_frame_min_size_enforced():
    f = Frame(src="a", dst="b", port="p", payload=None, size=1)
    assert f.size == MIN_WIRE_SIZE


def test_frame_delivery_between_nodes():
    cluster, n0, n1 = make_pair()
    eng = cluster.engine
    rx = n1.nic("tcp-ethernet").open_port("svc")

    def sender():
        frame = Frame(src="n0", dst="n1", port="svc", payload="hi", size=100)
        yield from n0.nic("tcp-ethernet").send(frame)

    def receiver():
        frame = yield rx.get()
        return frame.payload, eng.now

    eng.process(sender())
    p = eng.process(receiver())
    payload, when = eng.run(p)
    assert payload == "hi"
    # driver_send + wire + size/bw + driver_recv
    spec = TCP_ETHERNET
    expected = (spec.layers.driver_send + spec.wire_time(100)
                + spec.layers.driver_recv)
    assert when == pytest.approx(expected)


def test_myrinet_faster_than_ethernet():
    cluster, n0, n1 = make_pair()
    eng = cluster.engine
    times = {}

    def roundtrip(fabric_name):
        rx1 = n1.nic(fabric_name).open_port("ping")
        rx0 = n0.nic(fabric_name).open_port("pong")

        def ponger():
            frame = yield rx1.get()
            reply = Frame(src="n1", dst="n0", port="pong",
                          payload=frame.payload, size=frame.size)
            yield from n1.nic(fabric_name).send(reply)

        def pinger():
            start = eng.now
            f = Frame(src="n0", dst="n1", port="ping", payload=b"x", size=64)
            yield from n0.nic(fabric_name).send(f)
            yield rx0.get()
            times[fabric_name] = eng.now - start

        eng.process(ponger())
        return eng.process(pinger())

    p1 = roundtrip("tcp-ethernet")
    eng.run(p1)
    p2 = roundtrip("bip-myrinet")
    eng.run(p2)
    assert times["bip-myrinet"] < times["tcp-ethernet"] / 3


def test_send_from_detached_node_raises():
    cluster, n0, _n1 = make_pair()
    n0.crash()
    frame = Frame(src="n0", dst="n1", port="p", payload=None, size=32)
    with pytest.raises(Unreachable):
        cluster.ethernet.transmit(frame)


def test_nic_send_after_crash_raises_nodedown():
    cluster, n0, _n1 = make_pair()
    eng = cluster.engine
    nic = n0.nic("tcp-ethernet")
    n0.crash()

    def sender():
        frame = Frame(src="n0", dst="n1", port="p", payload=None, size=32)
        with pytest.raises(NodeDown):
            yield from nic.send(frame)
        return True

    assert eng.run(eng.process(sender()))


def test_frames_to_crashed_node_are_dropped():
    cluster, n0, n1 = make_pair()
    eng = cluster.engine
    n1.crash()
    f = Frame(src="n0", dst="n1", port="p", payload=None, size=32)
    cluster.ethernet.transmit(f)
    eng.run()
    assert cluster.ethernet.frames_dropped == 1


def test_crash_mid_flight_drops_frame():
    cluster, n0, n1 = make_pair()
    eng = cluster.engine
    rx = n1.nic("tcp-ethernet").open_port("p")

    def sender():
        f = Frame(src="n0", dst="n1", port="p", payload="late", size=32)
        yield from n0.nic("tcp-ethernet").send(f)

    eng.process(sender())
    # Crash n1 while the frame is in flight (wire time >> 10 us).
    cluster.faults.at(0.00005, CrashNode(node="n1"))
    eng.run()
    assert cluster.ethernet.frames_dropped >= 1
    assert len(rx.peek_all()) == 0


def test_partition_blocks_cross_group_traffic():
    cluster = Cluster.build(nodes=4)
    eng = cluster.engine
    cluster.ethernet.set_partition(["n0", "n1"], ["n2", "n3"])
    rx_n1 = cluster.node("n1").nic("tcp-ethernet").open_port("p")
    rx_n2 = cluster.node("n2").nic("tcp-ethernet").open_port("p")

    for dst in ("n1", "n2"):
        cluster.ethernet.transmit(
            Frame(src="n0", dst=dst, port="p", payload=dst, size=32))
    eng.run()
    assert [f.payload for f in rx_n1.peek_all()] == ["n1"]
    assert rx_n2.peek_all() == []

    cluster.ethernet.clear_partition()
    cluster.ethernet.transmit(
        Frame(src="n0", dst="n2", port="p", payload="again", size=32))
    eng.run()
    assert [f.payload for f in rx_n2.peek_all()] == ["again"]


def test_loss_probability_drops_frames_deterministically():
    def run_once():
        cluster = Cluster.build(spec=ClusterSpec(nodes=2, seed=5, loss_prob=0.5))
        rx = cluster.node("n1").nic("tcp-ethernet").open_port("p")
        for i in range(100):
            cluster.ethernet.transmit(
                Frame(src="n0", dst="n1", port="p", payload=i, size=32))
        cluster.engine.run()
        return len(rx.peek_all()), cluster.ethernet.frames_dropped

    got1, got2 = run_once(), run_once()
    assert got1 == got2                      # deterministic
    delivered, dropped = got1
    assert delivered + dropped == 100
    assert 20 < delivered < 80               # actually lossy


def test_nic_tx_serializes_concurrent_senders():
    cluster, n0, n1 = make_pair()
    eng = cluster.engine
    rx = n1.nic("bip-myrinet").open_port("p")
    arrivals = []

    def sender(i):
        f = Frame(src="n0", dst="n1", port="p", payload=i, size=30_000_000)
        yield from n0.nic("bip-myrinet").send(f)

    def receiver():
        for _ in range(2):
            f = yield rx.get()
            arrivals.append((f.payload, eng.now))

    eng.process(sender(0))
    eng.process(sender(1))
    eng.run(eng.process(receiver()))
    # 30 MB at 30 MB/s ~ 1s wire each; serialized tx => ~1s apart..
    assert arrivals[1][1] - arrivals[0][1] > 0.5


def test_default_handler_receives_unported_frames():
    cluster, n0, n1 = make_pair()
    eng = cluster.engine
    seen = []
    n1.nic("tcp-ethernet").default_handler = seen.append
    cluster.ethernet.transmit(
        Frame(src="n0", dst="n1", port="nobody", payload="x", size=32))
    eng.run()
    assert [f.payload for f in seen] == ["x"]
