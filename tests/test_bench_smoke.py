"""Smoke-run every benchmark in fast mode.

Each ``benchmarks/bench_*.py`` must complete end to end under
``REPRO_BENCH_FAST=1`` with timing disabled — this is what the CI runs,
and what guarantees a refactor cannot silently break a bench that is only
exercised manually.  Each bench runs in its own interpreter (several
mutate global state such as ``sys.settrace`` or GC tuning).
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
BENCH_DIR = REPO / "benchmarks"
BENCHES = sorted(BENCH_DIR.glob("bench_*.py"))
BENCHES = [b for b in BENCHES if b.name != "bench_helpers.py"]


def test_every_bench_is_covered():
    """The glob found the full suite (guards against a rename hiding one)."""
    assert len(BENCHES) >= 16


@pytest.mark.parametrize("bench", BENCHES, ids=lambda p: p.stem)
def test_bench_fast_smoke(bench):
    env = dict(os.environ)
    env["REPRO_BENCH_FAST"] = "1"
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO / "src"), str(BENCH_DIR)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    env.pop("REPRO_BENCH_ASSERT_SPEEDUP", None)
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", str(bench), "-q",
         "--benchmark-disable", "-p", "no:cacheprovider"],
        cwd=BENCH_DIR, env=env, capture_output=True, text=True,
        timeout=600)
    assert proc.returncode == 0, (
        f"{bench.name} failed in fast mode:\n"
        f"{proc.stdout[-4000:]}\n{proc.stderr[-2000:]}")
