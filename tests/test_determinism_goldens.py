"""Determinism golden suite — the engine-overhaul safety net.

Checked-in SHA-256 digests of campaign reports and telemetry snapshots
for a seed sweep (5 seeds x 2 C/R protocols over the ``standard``
campaign).  The digests were generated *before* the hot-path engine
overhaul; any optimization that perturbs event order, timing, fault
scheduling, or telemetry whitelisted series changes a digest and fails
this suite.

What is digested:

* the full campaign report (actions, checks, per-rank results, series,
  restart events, final simulated time) — normalized by dropping the one
  engine *work measure* (``engine.events_processed``): collapsing
  redundant event hops is exactly what the overhaul is allowed to do, so
  the number of engine wake-ups is not part of the behavioral contract,
  while everything the simulation *computed* is;
* the telemetry snapshot (the report's label-stable metric series plus
  the restart event log) separately, so a telemetry regression is
  distinguishable from a scheduling regression.

Regenerate (only when a PR deliberately changes simulated behavior)::

    PYTHONPATH=src python tests/test_determinism_goldens.py --regen
"""

from __future__ import annotations

import copy
import hashlib
import json
import sys
from pathlib import Path

import pytest

from repro.faults import CampaignRunner

GOLDEN_PATH = Path(__file__).parent / "goldens" / "determinism.json"

CAMPAIGN = "standard"
SEEDS = (0, 1, 2, 3, 4)
PROTOCOLS = ("stop-and-sync", "chandy-lamport")
POLICY = "restart"

MATRIX = [(seed, protocol) for seed in SEEDS for protocol in PROTOCOLS]


def _run_report(seed: int, protocol: str):
    return CampaignRunner(CAMPAIGN, seed=seed, protocol=protocol,
                          policy=POLICY, compare_golden=False).run()


def normalize(data: dict) -> dict:
    """The behavioral view of a campaign report: everything except the
    engine's processed-event count (an implementation work measure that
    legitimately shrinks when the engine batches redundant hops)."""
    out = copy.deepcopy(data)
    out.get("engine", {}).pop("events_processed", None)
    return out


def _digest(obj) -> str:
    blob = json.dumps(obj, sort_keys=True, default=repr).encode()
    return hashlib.sha256(blob).hexdigest()


def report_digest(data: dict) -> str:
    return _digest(normalize(data))


def telemetry_digest(data: dict) -> str:
    return _digest({"series": data["series"],
                    "restart_events": data["restart_events"]})


def _key(seed: int, protocol: str) -> str:
    return f"{CAMPAIGN}/seed{seed}/{protocol}/{POLICY}"


def _load_goldens() -> dict:
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def goldens():
    assert GOLDEN_PATH.exists(), (
        f"{GOLDEN_PATH} missing — regenerate with "
        f"PYTHONPATH=src python {__file__} --regen")
    return _load_goldens()


@pytest.mark.parametrize("seed,protocol", MATRIX,
                         ids=[_key(s, p) for s, p in MATRIX])
def test_campaign_report_matches_golden(goldens, seed, protocol):
    report = _run_report(seed, protocol)
    entry = goldens["entries"][_key(seed, protocol)]
    assert report_digest(report.data) == entry["report_sha256"], (
        f"campaign report for {_key(seed, protocol)} diverged from the "
        f"pre-overhaul golden — an engine change perturbed event order "
        f"or timing.\n{report.summary()}")
    assert telemetry_digest(report.data) == entry["telemetry_sha256"], (
        f"telemetry series for {_key(seed, protocol)} diverged from the "
        f"pre-overhaul golden")
    # Spot-check stable scalars too, so a digest mismatch in the future
    # comes with a human-readable first diff.
    assert report.data["status"] == entry["status"]
    assert report.data["engine"]["final_time"] == entry["final_time"]
    assert len(report.data["actions"]) == entry["n_actions"]


@pytest.mark.parametrize("seed,protocol", [MATRIX[0], MATRIX[-1]],
                         ids=[_key(*MATRIX[0]) + "/calendar",
                              _key(*MATRIX[-1]) + "/calendar"])
def test_calendar_scheduler_matches_heap_goldens(goldens, seed, protocol):
    """The calendar queue's byte-identity contract, end to end: the same
    pre-overhaul golden digests must hold with ``scheduler="calendar"``
    — the goldens are the gate, never regenerated for a scheduler."""
    report = CampaignRunner(
        CAMPAIGN, seed=seed, protocol=protocol, policy=POLICY,
        compare_golden=False, scheduler="calendar").run()
    entry = goldens["entries"][_key(seed, protocol)]
    assert report_digest(report.data) == entry["report_sha256"], (
        f"calendar-scheduler report for {_key(seed, protocol)} diverged "
        f"from the heap golden — dispatch order is no longer identical")
    assert telemetry_digest(report.data) == entry["telemetry_sha256"]


def test_same_process_rerun_is_byte_identical():
    """Two same-seed runs in one process: identical bytes, including the
    engine work measures (no process-global state leaks into reports)."""
    a = _run_report(SEEDS[0], PROTOCOLS[0]).to_json()
    b = _run_report(SEEDS[0], PROTOCOLS[0]).to_json()
    assert a == b


def test_normalization_only_drops_the_work_measure():
    report = _run_report(SEEDS[0], PROTOCOLS[0])
    norm = normalize(report.data)
    assert "events_processed" not in norm["engine"]
    assert norm["engine"]["final_time"] == report.data["engine"]["final_time"]
    assert norm["actions"] == report.data["actions"]


def regenerate() -> None:
    entries = {}
    for seed, protocol in MATRIX:
        report = _run_report(seed, protocol)
        entries[_key(seed, protocol)] = {
            "report_sha256": report_digest(report.data),
            "telemetry_sha256": telemetry_digest(report.data),
            "status": report.data["status"],
            "final_time": report.data["engine"]["final_time"],
            "n_actions": len(report.data["actions"]),
        }
        print(f"  {_key(seed, protocol)}: "
              f"{entries[_key(seed, protocol)]['report_sha256'][:16]}…")
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(
        {"campaign": CAMPAIGN, "policy": POLICY,
         "note": "generated pre-engine-overhaul; regenerate only when a "
                 "PR deliberately changes simulated behavior",
         "entries": entries}, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    if "--regen" in sys.argv:
        regenerate()
    else:
        print(__doc__)
