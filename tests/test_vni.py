"""VNI unit tests: fast path timing, polling thread, both drivers."""

import pytest

from repro.calibration import BLOCKING_RECV_SYSCALL
from repro.cluster import Cluster
from repro.errors import NodeDown
from repro.faults import CrashNode
from repro.net import BIP_MYRINET, TCP_ETHERNET
from repro.vni import Vni


def make_pair(transport="bip-myrinet", polling=True, nodes=2):
    cluster = Cluster.build(nodes=nodes)
    a = Vni(cluster.engine, cluster.node("n0"), port="app:0",
            transport=transport, polling=polling)
    b = Vni(cluster.engine, cluster.node("n1"), port="app:1",
            transport=transport, polling=polling)
    return cluster, a, b


def one_way(cluster, a, b, size=64):
    eng = cluster.engine
    out = {}

    def sender():
        yield from a.send("n1", "app:1", b"payload", size)

    def receiver():
        msg = yield from b.recv()
        out["msg"] = msg
        out["t"] = eng.now

    eng.process(sender())
    p = eng.process(receiver())
    eng.run(p)
    return out


def test_message_delivered_with_payload():
    cluster, a, b = make_pair()
    out = one_way(cluster, a, b)
    assert out["msg"].payload == b"payload"
    assert out["msg"].src_node == "n0"
    assert a.stats["sent"] == 1
    assert b.stats["received"] == 1


@pytest.mark.parametrize("transport,spec", [
    ("bip-myrinet", BIP_MYRINET), ("tcp-ethernet", TCP_ETHERNET)])
def test_one_way_time_is_model_minus_mpi_and_app_layers(transport, spec):
    # The VNI path covers vni_send + driver_send + wire(size) + driver_recv
    # + vni_recv; MPI and application layer costs are charged above the VNI.
    cluster, a, b = make_pair(transport=transport)
    size = 1000
    out = one_way(cluster, a, b, size=size)
    L = spec.layers
    expected = (L.vni_send + L.driver_send + size / spec.bandwidth
                + L.wire + L.driver_recv + L.vni_recv)
    assert out["t"] == pytest.approx(expected, rel=1e-9)


def test_polling_thread_quietly_queues_messages():
    cluster, a, b = make_pair()
    eng = cluster.engine

    def sender():
        for i in range(3):
            yield from a.send("n1", "app:1", i, 64)

    eng.process(sender())
    eng.run()
    # Nobody called recv, yet the messages sit in the received queue.
    assert b.pending() == 3
    ok, msg = b.recv_nowait()
    assert ok and msg.payload == 0


def test_blocking_mode_charges_syscall_per_receive():
    cluster_p, ap, bp = make_pair(polling=True)
    t_poll = one_way(cluster_p, ap, bp)["t"]
    cluster_b, ab, bb = make_pair(polling=False)
    t_block = one_way(cluster_b, ab, bb)["t"]
    assert t_block - t_poll == pytest.approx(BLOCKING_RECV_SYSCALL, rel=1e-9)


def test_messages_arrive_in_send_order():
    cluster, a, b = make_pair()
    eng = cluster.engine

    def sender():
        for i in range(10):
            yield from a.send("n1", "app:1", i, 64)

    def receiver():
        got = []
        for _ in range(10):
            msg = yield from b.recv()
            got.append(msg.payload)
        return got

    eng.process(sender())
    assert eng.run(eng.process(receiver())) == list(range(10))


def test_recv_fails_when_node_crashes():
    cluster, a, b = make_pair()
    eng = cluster.engine

    def receiver():
        with pytest.raises(NodeDown):
            yield from b.recv()
        return True

    p = eng.process(receiver())
    cluster.faults.at(0.01, CrashNode(node="n1"))
    assert eng.run(p)


def test_close_is_idempotent_and_stops_poller():
    cluster, a, b = make_pair()
    b.close()
    b.close()
    cluster.engine.run()
    assert b.recv_q.closed
