"""Property-based tests of MPI semantics (hypothesis)."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.mpi import ANY_SOURCE, ANY_TAG, MAX, MIN, PROD, SUM
from repro.mpi.matching import InboundMsg, MatchingEngine, PostedRecv
from repro.mpi.request import Request

from tests.mpi_helpers import make_world, run_ranks


# ---------------------------------------------------------------------------
# matching engine (pure, fast)
# ---------------------------------------------------------------------------

def _req():
    class _E:            # matching completes requests without an engine
        pass

    r = Request.__new__(Request)
    r.engine = None
    r.kind = "recv"
    r._status = None
    r._data = None
    r.cancelled = False

    class _Ev:
        triggered = False
        value = None

        def succeed(self, v):
            self.triggered = True
            self.value = v

    r.event = _Ev()
    return r


messages = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 5)),   # (source, tag)
    min_size=0, max_size=12)
receives = st.lists(
    st.tuples(st.sampled_from([ANY_SOURCE, 0, 1, 2, 3]),
              st.sampled_from([ANY_TAG, 0, 1, 2, 3, 4, 5])),
    min_size=0, max_size=12)


@settings(max_examples=200, deadline=None)
@given(msgs=messages, recvs=receives, post_first=st.booleans())
def test_matching_invariants(msgs, recvs, post_first):
    eng = MatchingEngine()
    reqs = []

    def post_all():
        for source, tag in recvs:
            req = _req()
            reqs.append(req)
            eng.post(PostedRecv(comm_id="c", source=source, tag=tag,
                                request=req))

    def arrive_all():
        for i, (source, tag) in enumerate(msgs):
            eng.arrived(InboundMsg(comm_id="c", source=source, tag=tag,
                                   data=("m", i), nbytes=8))

    if post_first:
        post_all()
        arrive_all()
    else:
        arrive_all()
        post_all()

    # Conservation: every message is either delivered or still unexpected.
    delivered = [r for r in reqs if r.event.triggered]
    assert len(delivered) + len(eng.unexpected) == len(msgs)
    # Every pending receive matches nothing in the unexpected queue
    # (otherwise the engine failed to pair a matchable pair).
    for recv in eng.posted:
        for msg in eng.unexpected:
            assert not recv.matches(msg)
    # Non-overtaking: for each (source, tag), delivered messages preserve
    # their send order.
    for src in range(4):
        for tag in range(6):
            got = [r.event.value[0][1] for r in delivered
                   if r.event.value[1].source == src
                   and r.event.value[1].tag == tag]
            sent = [i for i, (s, t) in enumerate(msgs)
                    if s == src and t == tag]
            assert got == sorted(got)
            assert set(got) <= set(sent)


@settings(max_examples=100, deadline=None)
@given(msgs=messages)
def test_snapshot_restore_preserves_unexpected_queue(msgs):
    eng = MatchingEngine()
    for i, (source, tag) in enumerate(msgs):
        eng.arrived(InboundMsg(comm_id="c", source=source, tag=tag,
                               data=i, nbytes=4))
    image = eng.snapshot_unexpected()
    eng2 = MatchingEngine()
    eng2.restore_unexpected(image)
    assert [(m.source, m.tag, m.data) for m in eng2.unexpected] == \
        [(m.source, m.tag, m.data) for m in eng.unexpected]


# ---------------------------------------------------------------------------
# collectives vs numpy reference (full simulation, small cases)
# ---------------------------------------------------------------------------

@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(values=st.lists(st.integers(-1000, 1000), min_size=2, max_size=4),
       op=st.sampled_from([SUM, PROD, MAX, MIN]))
def test_allreduce_matches_reference(values, op):
    n = len(values)
    cluster, apis = make_world(n)

    def prog(mpi, rank):
        out = yield from mpi.allreduce(values[rank], op=op)
        return out

    results = run_ranks(cluster, apis, prog)
    ref = values[0]
    from repro.mpi.reduce_ops import apply_op
    for v in values[1:]:
        ref = apply_op(op, ref, v)
    assert all(r == ref for r in results)


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(n=st.integers(2, 5), root=st.integers(0, 4), seed=st.integers(0, 99))
def test_bcast_gather_roundtrip(n, root, seed):
    root = root % n
    rng = np.random.default_rng(seed)
    payload = rng.integers(0, 100, size=5).tolist()
    cluster, apis = make_world(n)

    def prog(mpi, rank):
        data = payload if rank == root else None
        got = yield from mpi.bcast(data, root=root)
        back = yield from mpi.gather(got, root=root)
        return back

    results = run_ranks(cluster, apis, prog)
    assert results[root] == [payload] * n
    assert all(results[r] is None for r in range(n) if r != root)


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(n=st.integers(2, 5), seed=st.integers(0, 99))
def test_alltoall_is_transpose(n, seed):
    rng = np.random.default_rng(seed)
    matrix = rng.integers(0, 1000, size=(n, n)).tolist()
    cluster, apis = make_world(n)

    def prog(mpi, rank):
        out = yield from mpi.alltoall(matrix[rank])
        return out

    results = run_ranks(cluster, apis, prog)
    for j in range(n):
        assert results[j] == [matrix[i][j] for i in range(n)]
