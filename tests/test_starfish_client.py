"""The ASCII management/user client protocol, end to end (paper §3.1.1)."""

import pytest

from repro.core import AppSpec, StarfishCluster
from repro.daemon import parse_command, format_response
from repro.daemon.protocol import parse_submit_options
from repro.errors import ProtocolError


def drive(sf, script):
    """Run a client script (generator taking a connected Client)."""
    client = sf.client()

    def session():
        c = yield from client.connect()
        result = yield from script(c)
        yield from c.close()
        return result

    proc = sf.engine.process(session())
    sf.engine.run(until=sf.engine.now + 30.0)
    assert proc.triggered, "client session did not finish"
    if not proc.ok:
        raise proc.value
    return proc.value


# ---------------------------------------------------------------------------
# parsing unit tests
# ---------------------------------------------------------------------------

def test_parse_command_basic():
    assert parse_command("LOGIN admin adminpw MGMT") == \
        ("LOGIN", ["admin", "adminpw", "MGMT"])
    assert parse_command("nodes") == ("NODES", [])


def test_parse_command_rejects_unknown_and_arity():
    with pytest.raises(ProtocolError):
        parse_command("FROBNICATE x")
    with pytest.raises(ProtocolError):
        parse_command("DISABLE")          # missing argument
    with pytest.raises(ProtocolError):
        parse_command("")


def test_parse_submit_options():
    opts = parse_submit_options(["program=montecarlo", "ft=view-notify",
                                 "param.shots=5000"])
    assert opts == {"program": "montecarlo", "ft": "view-notify",
                    "param.shots": "5000"}
    with pytest.raises(ProtocolError):
        parse_submit_options(["no-equals-sign"])


def test_format_response():
    assert format_response(True) == "OK"
    assert format_response(False, "nope") == "ERR nope"
    assert format_response(True, "a", 3) == "OK a 3"


# ---------------------------------------------------------------------------
# sessions
# ---------------------------------------------------------------------------

def test_login_authentication():
    sf = StarfishCluster.build(nodes=2)

    def script(c):
        bad = yield from c.command("LOGIN admin wrongpw MGMT")
        nonadmin = yield from c.command("LOGIN alice alicepw MGMT")
        need = yield from c.command("NODES")
        ok = yield from c.command("LOGIN admin adminpw MGMT")
        return bad, nonadmin, need, ok

    bad, nonadmin, need, ok = drive(sf, script)
    assert bad.startswith("ERR")
    assert nonadmin.startswith("ERR")      # alice is not an administrator
    assert need.startswith("ERR")          # login required first
    assert ok.startswith("OK")


def test_user_session_cannot_run_mgmt_commands():
    sf = StarfishCluster.build(nodes=2)

    def script(c):
        yield from c.login("alice", "alicepw")
        return (yield from c.command("DISABLE n1"))

    assert drive(sf, script).startswith("ERR")


def test_mgmt_set_get_replicated_to_all_daemons():
    sf = StarfishCluster.build(nodes=3)

    def script(c):
        yield from c.login("admin", "adminpw", mgmt=True)
        yield from c.must("SET scheduler.quantum 50ms")
        return (yield from c.command("GET scheduler.quantum"))

    assert drive(sf, script) == "OK 50ms"
    sf.engine.run(until=sf.engine.now + 1.0)
    for daemon in sf.live_daemons():
        assert daemon.config["scheduler.quantum"] == "50ms"


def test_nodes_listing_and_disable():
    sf = StarfishCluster.build(nodes=3)

    def script(c):
        yield from c.login("admin", "adminpw", mgmt=True)
        yield from c.must("DISABLE n2")
        yield sf.engine.timeout(1.0)      # let the cast replicate
        return (yield from c.command("NODES"))

    reply = drive(sf, script)
    assert "n2:disabled" in reply
    assert "n0:up" in reply
    # The placement logic must now avoid n2.
    daemon = sf.any_daemon()
    picks = daemon._pick_nodes(6)
    assert "n2" not in picks


def test_submit_status_result_via_ascii():
    sf = StarfishCluster.build(nodes=2)

    def script(c):
        yield from c.login("alice", "alicepw")
        yield from c.must("SUBMIT myjob 2 program=computesleep "
                          "param.steps=3 param.step_time=0.01")
        # Poll status until done (reply: "OK <status> done=<k>/<n> ...").
        for _ in range(100):
            status = yield from c.command("STATUS myjob")
            if status.split()[1] == "done":
                break
            yield sf.engine.timeout(0.2)
        result = yield from c.command("RESULT myjob")
        return status, result

    status, result = drive(sf, script)
    assert status.startswith("OK done")
    assert result == "OK [3, 3]"


def test_submit_unknown_program_rejected():
    sf = StarfishCluster.build(nodes=2)

    def script(c):
        yield from c.login("alice", "alicepw")
        return (yield from c.command("SUBMIT x 2 program=doesnotexist"))

    assert drive(sf, script).startswith("ERR unknown program")


def test_user_cannot_touch_other_users_app():
    sf = StarfishCluster.build(nodes=2)

    def script(c):
        yield from c.login("alice", "alicepw")
        yield from c.must("SUBMIT alicejob 1 program=computesleep "
                          "param.steps=500 param.step_time=0.05")
        yield from c.close()
        c2 = sf.client()
        c2 = yield from c2.connect()
        yield from c2.login("bob", "bobpw")
        denied = yield from c2.command("DELETE alicejob")
        yield from c2.close()
        return denied

    assert "belongs to alice" in drive(sf, script)


def test_suspend_and_resume():
    sf = StarfishCluster.build(nodes=2)

    def script(c):
        yield from c.login("alice", "alicepw")
        yield from c.must("SUBMIT job 2 program=computesleep "
                          "param.steps=30 param.step_time=0.05")
        yield sf.engine.timeout(0.5)
        yield from c.must("SUSPEND job")
        yield sf.engine.timeout(0.3)      # let the suspension take hold
        status1 = yield from c.command("STATUS job")
        before = [h.stats["steps"] for (a, r), h in
                  _all_handles(sf, "job")]
        yield sf.engine.timeout(2.0)      # suspended: no progress
        after = [h.stats["steps"] for (a, r), h in
                 _all_handles(sf, "job")]
        yield from c.must("RESUME job")
        return status1, before, after

    status1, before, after = drive(sf, script)
    assert "suspended" in status1
    assert before == after                # frozen while suspended
    sf.engine.run(until=sf.engine.now + 5.0)
    from repro.daemon import AppStatus
    assert sf.any_daemon().registry.get("job").status is AppStatus.DONE


def _all_handles(sf, app_id):
    out = []
    for daemon in sf.live_daemons():
        for key, handle in daemon.handles.items():
            if key[0] == app_id:
                out.append((key, handle))
    return out


def test_delete_app_removes_registry_and_checkpoints():
    sf = StarfishCluster.build(nodes=2)

    def script(c):
        yield from c.login("admin", "adminpw", mgmt=True)
        yield from c.must("SUBMIT job 2 program=computesleep "
                          "param.steps=1000 param.step_time=0.05")
        yield sf.engine.timeout(0.5)
        yield from c.must("DELETE job")
        yield sf.engine.timeout(1.0)
        return (yield from c.command("STATUS job"))

    reply = drive(sf, script)
    assert reply.startswith("ERR unknown application")
    assert all("job" not in d.registry for d in sf.live_daemons())


def test_checkpoint_command():
    sf = StarfishCluster.build(nodes=2)

    def script(c):
        yield from c.login("alice", "alicepw")
        yield from c.must(
            "SUBMIT job 2 program=computesleep param.steps=200 "
            "param.step_time=0.02 ckpt=stop-and-sync level=vm")
        yield sf.engine.timeout(1.0)
        yield from c.must("CHECKPOINT job")
        yield sf.engine.timeout(2.0)
        return True

    drive(sf, script)
    assert sf.store.latest_committed("job") is not None


def test_client_reconnects_to_another_daemon_after_crash():
    # High availability (§3.1.3): the session dies with its daemon, but a
    # reconnect to any other daemon sees the same replicated state.
    sf = StarfishCluster.build(nodes=3)

    def script(c):
        yield from c.login("alice", "alicepw")
        # view-notify: the rank on the crashed node is absorbed, the rest
        # of the job finishes.
        yield from c.must("SUBMIT job 2 program=computesleep "
                          "param.steps=6 param.step_time=0.05 "
                          "ft=view-notify")
        yield sf.engine.timeout(0.2)
        return True

    # Connect specifically to daemon n0 from node n2.
    client = sf.client(from_node="n2", to_node="n0")

    def session():
        c = yield from client.connect()
        yield from script(c)
        # Crash the daemon we are talking to.
        sf.crash_node("n0")
        # Reconnect through n1 and continue the disrupted session.
        c2 = sf.client(from_node="n2", to_node="n1")
        c2 = yield from c2.connect()
        yield from c2.login("alice", "alicepw")
        for _ in range(100):
            status = yield from c2.command("STATUS job")
            if status.split()[1] == "done":
                return status
            yield sf.engine.timeout(0.3)
        return status

    proc = sf.engine.process(session())
    sf.engine.run(until=sf.engine.now + 60.0)
    assert proc.triggered and proc.ok
    assert proc.value.split()[1] == "done"


# ---------------------------------------------------------------------------
# timeouts & retry (graceful degradation instead of hangs)
# ---------------------------------------------------------------------------

def test_request_raises_typed_error_when_daemon_node_dies():
    from repro.errors import NetworkError, RequestTimeout
    sf = StarfishCluster.build(nodes=3)
    client = sf.client(from_node="n0", to_node="n2")

    def session():
        yield from client.connect()
        sf.cluster.crash_node("n2")
        try:
            yield from client.request("NODES", timeout=0.3, attempts=2,
                                      backoff=0.05)
        except (RequestTimeout, NetworkError) as exc:
            return type(exc).__name__
        return "no error"

    proc = sf.engine.process(session())
    sf.engine.run(until=sf.engine.now + 30.0)
    assert proc.triggered, "request() hung instead of timing out"
    assert proc.value in ("RequestTimeout", "ConnectionClosed")


def test_connect_with_timeout_to_dead_daemon():
    from repro.errors import RequestTimeout
    sf = StarfishCluster.build(nodes=2)
    sf.cluster.crash_node("n1")
    client = sf.client(from_node="n0", to_node="n1")

    def session():
        with pytest.raises(RequestTimeout):
            yield from client.connect(timeout=0.4, attempts=2)
        return "typed"

    proc = sf.engine.process(session())
    sf.engine.run(until=sf.engine.now + 10.0)
    assert proc.triggered and proc.value == "typed"


def test_request_reconnects_and_relogs_in_after_drop():
    sf = StarfishCluster.build(nodes=2)
    client = sf.client(from_node="n0", to_node="n1")

    def session():
        yield from client.connect()
        yield from client.login("admin", "adminpw", mgmt=True)
        # Simulate a dropped control connection mid-session.
        client.conn.abort()
        reply = yield from client.request("NODES", timeout=2.0)
        return reply

    proc = sf.engine.process(session())
    sf.engine.run(until=sf.engine.now + 30.0)
    assert proc.triggered and proc.ok
    assert proc.value.startswith("OK")
