"""The schedule perturbation: tie shuffling, jitter, and determinism."""

import pytest

from repro.check import SchedulePerturbation
from repro.errors import SimulationError
from repro.sim import Engine


def _dispatch_order(perturb_seed, n=12, driver="run"):
    """Order in which n same-instant processes run under one seed."""
    eng = Engine(seed=0)
    if perturb_seed is not None:
        eng.set_perturbation(SchedulePerturbation(perturb_seed))
    order = []

    def make(i):
        def proc():
            yield eng.timeout(1.0)
            order.append(i)
        return proc

    for i in range(n):
        eng.process(make(i)())
    if driver == "run":
        eng.run()
    else:
        while True:
            try:
                eng.step()
            except SimulationError:
                break
    return order


def test_no_perturbation_keeps_insertion_order():
    assert _dispatch_order(None) == list(range(12))


def test_tie_shuffle_changes_order_but_is_seed_deterministic():
    base = _dispatch_order(None)
    a1 = _dispatch_order(7)
    a2 = _dispatch_order(7)
    b = _dispatch_order(8)
    assert a1 == a2                      # same seed, same schedule
    assert sorted(a1) == sorted(base)    # a permutation, nothing lost
    assert a1 != base                    # 12! orders: collision ~ never
    assert b != a1


def test_step_and_run_dispatch_identically_under_perturbation():
    assert _dispatch_order(3, driver="step") == _dispatch_order(3)


def test_urgent_and_normal_never_mix_in_a_tie_group():
    """Unequal priority ends the group: an URGENT succeed() always beats
    same-instant NORMAL events, in every perturbed order."""
    for seed in range(5):
        eng = Engine()
        eng.set_perturbation(SchedulePerturbation(seed))
        order = []

        def normal(i):
            def proc():
                yield eng.timeout(1.0)
                order.append(("normal", i))
            return proc

        for i in range(6):
            eng.process(normal(i)())
        urgent = eng.event()
        urgent.callbacks.append(lambda ev: order.append(("urgent", 0)))

        def trigger():
            yield eng.timeout(1.0)
            urgent.succeed(priority=0)

        eng.process(trigger())
        eng.run()
        fired = order.index(("urgent", 0))
        before = [o for o in order[:fired] if o[0] == "normal"]
        # The trigger process is itself part of the t=1.0 NORMAL tie
        # group, so some normals may precede it — but once the URGENT
        # event exists it preempts every remaining NORMAL.
        assert order[fired][0] == "urgent"
        assert len(before) + 1 + (len(order) - fired - 1) == len(order)
        assert all(o[0] == "normal" for o in order[fired + 1:])


def test_set_perturbation_mid_group_refused():
    eng = Engine()
    eng.set_perturbation(SchedulePerturbation(1))
    done = []

    def proc(i):
        yield eng.timeout(1.0)
        done.append(i)

    for i in range(8):
        eng.process(proc(i))
    # step() far enough to have a shuffled remainder parked.
    while not done:
        eng.step()
    assert eng._tie_pending
    with pytest.raises(SimulationError):
        eng.set_perturbation(None)


def test_peek_sees_parked_tie_group():
    eng = Engine()
    eng.set_perturbation(SchedulePerturbation(1))
    done = []

    def proc(i):
        yield eng.timeout(1.0)
        done.append(i)

    for i in range(8):
        eng.process(proc(i))
    while not done:
        eng.step()
    assert eng._tie_pending
    assert eng.peek() == 1.0
    eng.run()
    assert sorted(done) == list(range(8))


def test_run_until_event_completes_under_perturbation():
    eng = Engine(seed=0)
    eng.set_perturbation(SchedulePerturbation(5))

    def child():
        yield eng.timeout(3)
        return "child-done"

    assert eng.run(eng.process(child())) == "child-done"
    assert eng.now == 3


def test_run_until_time_parks_future_events():
    eng = Engine()
    eng.set_perturbation(SchedulePerturbation(5))
    fired = []

    def proc():
        yield eng.timeout(2.0)
        fired.append(eng.now)

    eng.process(proc())
    eng.run(until=1.0)
    assert eng.now == 1.0 and not fired
    eng.run()
    assert fired == [2.0]


def test_jitter_draws_are_seeded_and_bounded():
    p1 = SchedulePerturbation(9, jitter=1e-5)
    p2 = SchedulePerturbation(9, jitter=1e-5)
    d1 = [p1.draw_jitter() for _ in range(100)]
    d2 = [p2.draw_jitter() for _ in range(100)]
    assert d1 == d2
    assert all(0.0 <= d < 1e-5 for d in d1)
    assert len(set(d1)) > 90
    with pytest.raises(ValueError):
        SchedulePerturbation(0, jitter=-1.0)


def test_jitter_preserves_per_link_fifo():
    """Frames on one (src, dst) link arrive in send order even when each
    frame's wire time is independently jittered."""
    from repro.cluster import Cluster, ClusterSpec
    from repro.net import Frame

    spec = ClusterSpec(nodes=2, perturb_seed=11, delivery_jitter=1e-4)
    cluster = Cluster.build(spec=spec)
    eng = cluster.engine
    n0, n1 = cluster.node("n0"), cluster.node("n1")
    rx = n1.nic("tcp-ethernet").open_port("svc")
    got = []

    def sender():
        for i in range(30):
            frame = Frame(src="n0", dst="n1", port="svc",
                          payload=i, size=64)
            yield from n0.nic("tcp-ethernet").send(frame)

    def receiver():
        for _ in range(30):
            frame = yield rx.get()
            got.append(frame.payload)

    eng.process(sender())
    p = eng.process(receiver())
    eng.run(p)
    assert got == list(range(30))


def test_cluster_spec_validates_perturbation_fields():
    from repro.cluster import ClusterSpec

    with pytest.raises(ValueError):
        ClusterSpec(delivery_jitter=-1e-6, perturb_seed=1)
    with pytest.raises(ValueError):
        ClusterSpec(delivery_jitter=1e-6)      # jitter needs a seed
    spec = ClusterSpec(perturb_seed=4, delivery_jitter=1e-6)
    eng = Engine.from_spec(spec)
    assert eng._perturb is not None
    assert eng._perturb.seed == 4
    assert eng._perturb.delivery_jitter == 1e-6
    assert Engine.from_spec(ClusterSpec())._perturb is None
