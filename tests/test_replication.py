"""Active rank replication: failover planner, oracle, tap, e2e, property.

Covers the pieces the replication protocol adds on top of the four-role
layer: the :class:`ReplicaFailoverPlanner` (promote, never respawn), the
:class:`ReplicaOracle` invariants (failover-exactly-once, no-orphan-send),
submit-time replica placement (never co-located), full failover through
the Starfish stack with ``ranks_restarted == 0``, and the Hypothesis
replica-consistency property: under schedule perturbation and delivery
jitter every copy of a rank observes the same inbound message sequence,
each send delivered exactly once.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import ComputeSleep
from repro.apps.jacobi import Jacobi1D
from repro.ckpt.protocols.replication import (ReplicaFailoverPlanner,
                                              ReplicationProtocol)
from repro.cluster.spec import ClusterSpec
from repro.core.appspec import AppSpec, CheckpointConfig
from repro.core.policies import FaultPolicy
from repro.core.starfish import StarfishCluster
from repro.errors import DaemonError, OracleViolation, PlacementError


# ---------------------------------------------------------------------------
# the oracle: one deliberate violation per rule
# ---------------------------------------------------------------------------

def test_replica_oracle_rejects_orphan_sends():
    proto = ReplicationProtocol()
    oracle = proto.replica_oracle
    oracle.bind(1, primary=False)
    oracle.delivered(0, ssn=1, expected=1)
    # ssn 3 with only 1 consumed: a send skipped the total order.
    with pytest.raises(OracleViolation) as exc:
        oracle.delivered(0, ssn=3, expected=2)
    assert "no-orphan-send" in str(exc.value)


def test_replica_oracle_rejects_double_promotion():
    proto = ReplicationProtocol()
    oracle = proto.replica_oracle
    oracle.bind(2, primary=False)
    oracle.promoted()                         # backup -> primary: fine
    with pytest.raises(OracleViolation) as exc:
        oracle.promoted()                     # a primary cannot fail over
    assert "failover-exactly-once" in str(exc.value)


def test_replica_oracle_rejects_promoting_a_primary():
    proto = ReplicationProtocol()
    oracle = proto.replica_oracle
    oracle.bind(0, primary=True)
    with pytest.raises(OracleViolation):
        oracle.promoted()


# ---------------------------------------------------------------------------
# the planner: promote, prune, k-exhausted fallback
# ---------------------------------------------------------------------------

class _Member:
    def __init__(self, node):
        self.node = node


class _StubView:
    def __init__(self, nodes):
        self.members = [_Member(n) for n in nodes]


class _StubGm:
    def __init__(self, nodes):
        self.view = _StubView(nodes)


class _StubDaemon:
    def __init__(self, alive):
        self.gm = _StubGm(alive)


class _StubRecord:
    def __init__(self, placement, replicas):
        self.placement = placement
        self.replicas = replicas


def test_failover_planner_promotes_first_live_copy():
    daemon = _StubDaemon(alive=["n0", "n2", "n3"])
    record = _StubRecord({0: "n0", 1: "n1"}, {0: ("n2",), 1: ("n2", "n3")})
    plan = ReplicaFailoverPlanner().plan(daemon, record, failed_ranks=[1])
    assert ReplicaFailoverPlanner.solo
    assert plan["mode"] == "failover"
    assert plan["promote"] == {1: "n2"}
    assert plan["ranks"] == [1]
    # The promoted node leaves rank 1's backup set; rank 0's is untouched.
    assert plan["replicas"] == {0: ("n2",), 1: ("n3",)}


def test_failover_planner_returns_none_when_k_exhausted():
    daemon = _StubDaemon(alive=["n0"])
    record = _StubRecord({0: "n0", 1: "n1"}, {1: ("n2",)})  # n2 also dead
    assert ReplicaFailoverPlanner().plan(daemon, record,
                                         failed_ranks=[1]) is None


# ---------------------------------------------------------------------------
# submit-time placement and spec validation
# ---------------------------------------------------------------------------

def test_checkpoint_config_rejects_replicas_without_replication():
    with pytest.raises(DaemonError):
        CheckpointConfig(protocol="stop-and-sync", replicas=2)
    with pytest.raises(DaemonError):
        CheckpointConfig(protocol="replication", replicas=0)


def _replicated_spec(nprocs=3, replicas=2, **params):
    params = {"steps": 8, "step_time": 0.25, "state_bytes": 1024, **params}
    return AppSpec(program=ComputeSleep, nprocs=nprocs, params=params,
                   ft_policy=FaultPolicy.RESTART,
                   checkpoint=CheckpointConfig(protocol="replication",
                                               replicas=replicas))


def test_submit_places_copies_on_distinct_nodes():
    sf = StarfishCluster.build(nodes=5, seed=7)
    handle = sf.submit(_replicated_spec())
    sf.engine.run(until=sf.engine.now + 0.5)
    record = handle._record()
    assert len(record.replicas) == 3
    for rank, backups in record.replicas.items():
        assert record.placement[rank] not in backups
        assert len(set(backups)) == len(backups) == 1
    # Backup hosts are lightweight-group members (they need the casts).
    daemon = sf.any_daemon()
    member_nodes = {ep.node for ep in daemon.lwg.members(handle.app_id)}
    for backups in record.replicas.values():
        assert set(backups) <= member_nodes


def test_submit_rejects_more_copies_than_nodes():
    sf = StarfishCluster.build(nodes=2, seed=7)
    with pytest.raises(PlacementError):
        sf.submit(_replicated_spec(nprocs=2, replicas=3))


# ---------------------------------------------------------------------------
# end to end: crash a primary's node, watch the backup take over
# ---------------------------------------------------------------------------

def _failover_run(crash=True, nprocs=3):
    sf = StarfishCluster.build(nodes=5, seed=7)
    handle = sf.submit(_replicated_spec(nprocs=nprocs, steps=12))
    sf.engine.run(until=sf.engine.now + 0.5)
    record = handle._record()
    if crash:
        sf.engine.run(until=sf.engine.now + 0.7)
        sf.crash_node(record.placement[1])
    results = sf.run_to_completion(handle, timeout=120.0)
    restarted = sf.engine.metrics.group_by("daemon.ranks_restarted", "app")
    return sf, handle, results, restarted.get(handle.app_id, 0)


def test_failover_end_to_end_restarts_zero_ranks():
    _sf, _h, golden, _ = _failover_run(crash=False)
    sf, handle, results, ranks_restarted = _failover_run()
    record = handle._record()
    # THE point of active replication: the crash cost zero respawns and
    # zero rollback — a surviving copy was promoted in place.
    assert ranks_restarted == 0
    assert handle.restarts == 1
    assert results == golden
    # Rank 1 now runs where its backup was, and that backup slot is gone.
    assert 1 not in record.replicas
    promotions = sf.engine.metrics.group_by("repl.promotions", "app")
    assert promotions.get(handle.app_id, 0) == 1


def test_failover_keeps_world_version_and_survivor_placement():
    sf, handle, _results, _ = _failover_run()
    record = handle._record()
    assert record.world_version == 0      # no rollback wave, no new world
    assert sorted(record.placement) == [0, 1, 2]


def test_migrate_refused_for_replicated_apps():
    from repro.errors import PlacementError
    sf = StarfishCluster.build(nodes=5, seed=7)
    handle = sf.submit(_replicated_spec(steps=12))
    sf.engine.run(until=sf.engine.now + 0.5)
    before = dict(handle._record().placement)
    with pytest.raises(PlacementError, match="active replication"):
        sf.migrate(handle, rank=0, target_node="n4")
    sf.engine.run(until=sf.engine.now + 1.0)
    assert handle._record().placement == before
    sf.run_to_completion(handle, timeout=120.0)


# ---------------------------------------------------------------------------
# replica consistency under perturbation + jitter (Hypothesis)
# ---------------------------------------------------------------------------

def _collect_replica_logs(sf, app_id):
    """{rank: {copy_index: inbound_log}} over every live copy's module."""
    logs = {}
    for daemon in sf.live_daemons():
        handles = [h for (aid, _r), h in daemon.handles.items()
                   if aid == app_id]
        handles += [h for h in daemon._lingering.get(app_id, ())]
        for h in handles:
            if h.protocol is None:
                continue
            copy = h.protocol.copy_index()
            logs.setdefault(h.rank, {})[copy] = list(h.protocol.inbound_log)
    return logs


@settings(max_examples=5, deadline=None)
@given(pseed=st.integers(min_value=1, max_value=10**9))
def test_replicas_observe_identical_inbound_sequences(pseed):
    spec = ClusterSpec(nodes=5, seed=7, perturb_seed=pseed,
                       delivery_jitter=0.0005)
    sf = StarfishCluster.build(spec=spec)
    app = AppSpec(program=Jacobi1D, nprocs=3,
                  params={"n": 96, "iterations": 30, "iters_per_step": 10,
                          "compute_ns_per_cell": 30000},
                  ft_policy=FaultPolicy.RESTART,
                  checkpoint=CheckpointConfig(protocol="replication",
                                              replicas=2))
    handle = sf.submit(app)
    sf.engine.run(until=sf.engine.now + 0.5)
    # Hold references now: rank-done pops handles into lingering later.
    collected = {}

    def snapshot():
        for rank, by_copy in _collect_replica_logs(sf,
                                                   handle.app_id).items():
            merged = collected.setdefault(rank, {})
            merged.update(by_copy)

    for _ in range(40):
        if handle.finished:
            break
        snapshot()
        sf.engine.run(until=sf.engine.now + 0.5)
    snapshot()
    assert handle.status.value == "done"
    for rank, by_copy in collected.items():
        assert len(by_copy) == 2, f"rank {rank}: missing a copy's log"
        for log in by_copy.values():
            # Exactly-once: no (sender, ssn) pair is ever delivered twice.
            pairs = [(src, ssn) for (src, ssn, _tag, _data) in log]
            assert len(pairs) == len(set(pairs))
        # Replica consistency: both copies saw the identical sequence.
        # The backup is killed the instant the app completes, so its log
        # may be a prefix of the primary's — but never diverge.
        ordered = sorted(by_copy.values(), key=len)
        short, long = ordered[0], ordered[-1]
        assert short, f"rank {rank}: a copy delivered nothing"
        assert long[:len(short)] == short
