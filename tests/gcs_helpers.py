"""Shared helpers for group-communication tests."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster import Cluster
from repro.gcs import CastEvent, GcsConfig, GroupMember, ViewEvent


class Harness:
    """A cluster with one group member per node and recorded upcalls."""

    def __init__(self, nodes: int = 4, seed: int = 0,
                 config: Optional[GcsConfig] = None,
                 state_provider=None):
        self.cluster = Cluster.build(nodes=nodes, seed=seed)
        self.engine = self.cluster.engine
        self.cfg = config or GcsConfig()
        self.members: Dict[str, GroupMember] = {}
        self.log: Dict[str, List] = {}
        for node_id in sorted(self.cluster.nodes):
            node = self.cluster.node(node_id)
            gm = GroupMember(self.engine, node, config=self.cfg,
                             state_provider=state_provider)
            self.members[node_id] = gm
            self.log[node_id] = []
            node.spawn(self._recorder(node_id, gm), name=f"rec:{node_id}")

    def _recorder(self, node_id: str, gm: GroupMember):
        try:
            while True:
                ev = yield gm.events.get()
                self.log[node_id].append(ev)
        except Exception:
            return

    def boot_all(self) -> None:
        """First member founds the group; the rest join through it."""
        ids = sorted(self.members)
        first = self.members[ids[0]]
        first.start(contact=None)
        for nid in ids[1:]:
            self.members[nid].start(contact=first.endpoint)

    def run(self, until: float) -> None:
        self.engine.run(until=until)

    # -- log digests ------------------------------------------------------

    def casts(self, node_id: str) -> List:
        return [ev.payload for ev in self.log[node_id]
                if isinstance(ev, CastEvent)]

    def views(self, node_id: str) -> List:
        return [ev for ev in self.log[node_id] if isinstance(ev, ViewEvent)]

    def last_view(self, node_id: str):
        views = self.views(node_id)
        return views[-1].view if views else None

    def member_ids(self, node_id: str):
        view = self.last_view(node_id)
        return sorted(m.node for m in view.members) if view else []


def assert_common_prefix(sequences) -> None:
    """Every sequence must be a prefix of the longest one (total order)."""
    sequences = [list(s) for s in sequences]
    longest = max(sequences, key=len)
    for seq in sequences:
        assert seq == longest[:len(seq)], (
            f"total order violated:\n  {seq}\n is not a prefix of\n  {longest}")
