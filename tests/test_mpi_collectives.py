"""MPI collective operations."""

import numpy as np
import pytest

from repro.errors import MpiError
from repro.mpi import (BAND, BOR, LAND, LOR, MAX, MAXLOC, MIN, MINLOC, PROD,
                       SUM, UNDEFINED)

from tests.mpi_helpers import make_world, run_ranks


@pytest.mark.parametrize("nprocs", [1, 2, 3, 4, 5, 8])
def test_bcast_all_sizes(nprocs):
    cluster, apis = make_world(nprocs)

    def prog(mpi, rank):
        data = {"payload": list(range(10))} if rank == 0 else None
        out = yield from mpi.bcast(data, root=0)
        return out

    results = run_ranks(cluster, apis, prog)
    assert all(r == {"payload": list(range(10))} for r in results)


def test_bcast_nonzero_root():
    cluster, apis = make_world(4)

    def prog(mpi, rank):
        data = "from-2" if rank == 2 else None
        out = yield from mpi.bcast(data, root=2)
        return out

    assert run_ranks(cluster, apis, prog) == ["from-2"] * 4


@pytest.mark.parametrize("nprocs", [1, 2, 3, 4, 7])
def test_reduce_sum(nprocs):
    cluster, apis = make_world(nprocs)

    def prog(mpi, rank):
        out = yield from mpi.reduce((rank + 1) ** 2, op=SUM, root=0)
        return out

    results = run_ranks(cluster, apis, prog)
    assert results[0] == sum((i + 1) ** 2 for i in range(nprocs))
    assert all(r is None for r in results[1:])


def test_reduce_ops_matrix():
    cluster, apis = make_world(4)
    cases = {"max": (MAX, 3), "min": (MIN, 0), "prod": (PROD, 0),
             "band": (BAND, 0), "bor": (BOR, 3),
             "land": (LAND, False), "lor": (LOR, True)}

    def prog(mpi, rank):
        out = {}
        for name, (op, _) in sorted(cases.items()):
            out[name] = yield from mpi.allreduce(rank, op=op)
        return out

    results = run_ranks(cluster, apis, prog)
    for name, (_op, expected) in cases.items():
        for r in results:
            assert r[name] == expected, name


def test_allreduce_numpy_arrays():
    cluster, apis = make_world(3)

    def prog(mpi, rank):
        vec = np.full(5, float(rank + 1))
        out = yield from mpi.allreduce(vec, op=SUM)
        return out

    for r in run_ranks(cluster, apis, prog):
        assert np.array_equal(r, np.full(5, 6.0))


def test_maxloc_minloc():
    cluster, apis = make_world(4)
    values = [3.0, 9.0, 9.0, 1.0]

    def prog(mpi, rank):
        mx = yield from mpi.allreduce((values[rank], rank), op=MAXLOC)
        mn = yield from mpi.allreduce((values[rank], rank), op=MINLOC)
        return mx, mn

    for mx, mn in run_ranks(cluster, apis, prog):
        assert mx == (9.0, 1)   # ties go to the lower rank
        assert mn == (1.0, 3)


def test_barrier_synchronizes():
    cluster, apis = make_world(4)
    eng = cluster.engine

    def prog(mpi, rank):
        yield eng.timeout(rank * 0.1)  # stagger arrivals
        yield from mpi.barrier()
        return eng.now

    exits = run_ranks(cluster, apis, prog)
    assert min(exits) >= 0.3   # nobody leaves before the last (0.3) arrives
    assert max(exits) - min(exits) < 0.05


def test_gather_orders_by_rank():
    cluster, apis = make_world(4)

    def prog(mpi, rank):
        out = yield from mpi.gather(f"r{rank}", root=2)
        return out

    results = run_ranks(cluster, apis, prog)
    assert results[2] == ["r0", "r1", "r2", "r3"]
    assert all(results[i] is None for i in (0, 1, 3))


def test_scatter_distributes():
    cluster, apis = make_world(3)

    def prog(mpi, rank):
        data = [10, 20, 30] if rank == 0 else None
        out = yield from mpi.scatter(data, root=0)
        return out

    assert run_ranks(cluster, apis, prog) == [10, 20, 30]


def test_scatter_wrong_length_rejected():
    cluster, apis = make_world(2)

    def prog(mpi, rank):
        if rank == 0:
            with pytest.raises(MpiError):
                yield from mpi.scatter([1, 2, 3], root=0)
        return True
        yield  # pragma: no cover

    run_ranks(cluster, apis, prog, until=1.0)


def test_allgather():
    cluster, apis = make_world(4)

    def prog(mpi, rank):
        out = yield from mpi.allgather(rank * rank)
        return out

    for r in run_ranks(cluster, apis, prog):
        assert r == [0, 1, 4, 9]


def test_alltoall_transpose():
    cluster, apis = make_world(3)

    def prog(mpi, rank):
        out = yield from mpi.alltoall([f"{rank}->{j}" for j in range(3)])
        return out

    results = run_ranks(cluster, apis, prog)
    for j, row in enumerate(results):
        assert row == [f"{i}->{j}" for i in range(3)]


def test_scan_inclusive_prefix():
    cluster, apis = make_world(5)

    def prog(mpi, rank):
        out = yield from mpi.scan(rank + 1, op=SUM)
        return out

    assert run_ranks(cluster, apis, prog) == [1, 3, 6, 10, 15]


def test_back_to_back_collectives_do_not_cross_talk():
    cluster, apis = make_world(3)

    def prog(mpi, rank):
        a = yield from mpi.allreduce(1, op=SUM)
        b = yield from mpi.allreduce(10, op=SUM)
        c = yield from mpi.bcast("x" if rank == 0 else None, root=0)
        return a, b, c

    for r in run_ranks(cluster, apis, prog):
        assert r == (3, 30, "x")


def test_collective_with_outstanding_wildcard_irecv():
    # A user wildcard receive must NOT swallow internal collective traffic.
    cluster, apis = make_world(2)

    def prog(mpi, rank):
        req = mpi.irecv()  # ANY_SOURCE, ANY_TAG
        total = yield from mpi.allreduce(rank + 1, op=SUM)
        other = 1 - rank
        yield from mpi.send("user-msg", dest=other, tag=7)
        data = yield from req.wait()
        return total, data

    for total, data in run_ranks(cluster, apis, prog):
        assert total == 3
        assert data == "user-msg"


def test_split_by_parity():
    cluster, apis = make_world(4)

    def prog(mpi, rank):
        sub = yield from mpi.split(color=rank % 2)
        total = yield from sub.allreduce(rank, op=SUM)
        return sub.size, sub.rank, total

    results = run_ranks(cluster, apis, prog)
    assert results[0] == (2, 0, 2)   # evens: 0+2
    assert results[2] == (2, 1, 2)
    assert results[1] == (2, 0, 4)   # odds: 1+3
    assert results[3] == (2, 1, 4)


def test_split_undefined_gets_none():
    cluster, apis = make_world(3)

    def prog(mpi, rank):
        sub = yield from mpi.split(color=UNDEFINED if rank == 1 else 0)
        return None if sub is None else sub.size

    assert run_ranks(cluster, apis, prog) == [2, None, 2]


def test_split_key_reorders_ranks():
    cluster, apis = make_world(3)

    def prog(mpi, rank):
        sub = yield from mpi.split(color=0, key=-rank)  # reverse order
        return sub.rank

    assert run_ranks(cluster, apis, prog) == [2, 1, 0]


def test_dup_isolates_traffic():
    cluster, apis = make_world(2)

    def prog(mpi, rank):
        dup = yield from mpi.dup()
        if rank == 0:
            yield from mpi.world.send("on-world", dest=1, tag=5)
            yield from dup.send("on-dup", dest=1, tag=5)
        else:
            got_dup = yield from dup.recv(source=0, tag=5)
            got_world = yield from mpi.world.recv(source=0, tag=5)
            return got_dup, got_world

    assert run_ranks(cluster, apis, prog)[1] == ("on-dup", "on-world")


def test_bcast_message_count_is_logarithmic():
    # Binomial tree: n-1 point-to-point messages but log2(n) rounds.
    cluster, apis = make_world(8)

    def prog(mpi, rank):
        data = b"x" * 1000 if rank == 0 else None
        t0 = cluster.engine.now
        yield from mpi.bcast(data, root=0)
        return cluster.engine.now - t0

    times = run_ranks(cluster, apis, prog)
    sent = sum(api.endpoint.vni.stats["sent"] for api in apis)
    assert sent == 7  # n-1 messages total
    # Depth: max time ~ 3 sequential hops, not 7.
    one_hop = times[4]  # rank 4 receives directly from 0 in round 1...
    assert max(times) < 7 * one_hop
