"""ControlAPI (in-sim JSON surface) and the real HTTP gateway.

The HTTP tests run the stdlib server on a helper thread and drive it
with real ``urllib`` requests — the same path ``repro fleet serve
--self-test`` exercises in CI.
"""

import json
import socket
import struct
import urllib.error
import urllib.request

import pytest

from repro.core import StarfishCluster
from repro.fleet import (ControlAPI, FleetController, FleetHTTPServer,
                         TenantQuota)


@pytest.fixture()
def api():
    sf = StarfishCluster.build(nodes=4)
    controller = FleetController(
        sf, quotas={"acme": TenantQuota(max_ranks=8, max_apps=4)})
    sf.engine.run(until=sf.engine.now + 1.0)   # first heartbeat round
    return ControlAPI(controller)


def _submit(api, **over):
    req = {"op": "submit", "tenant": "acme", "program": "computesleep",
           "nprocs": 2, "params": {"steps": 3, "step_time": 0.05}}
    req.update(over)
    return api.handle(req)


def test_submit_status_and_step(api):
    response = _submit(api)
    assert response["ok"]
    job_id = response["job"]["job_id"]
    assert response["job"]["state"] == "queued"
    api.handle({"op": "step", "dt": 2.0})
    status = api.handle({"op": "status", "job_id": job_id})
    assert status["ok"] and status["job"]["state"] == "done"
    jobs = api.handle({"op": "jobs"})
    assert [j["job_id"] for j in jobs["jobs"]] == [job_id]


def test_nodes_reflects_fleet_view(api):
    response = api.handle({"op": "nodes"})
    assert response["ok"]
    rows = {r["node"]: r for r in response["nodes"]}
    assert set(rows) == {"n0", "n1", "n2", "n3"}
    assert all(r["health"] == "active" for r in rows.values())


def test_drain_and_uncordon_ops(api):
    assert api.handle({"op": "drain", "node": "n3"})["health"] == "draining"
    api.handle({"op": "step", "dt": 1.0})
    nodes = api.handle({"op": "nodes"})["nodes"]
    assert next(r for r in nodes if r["node"] == "n3")["health"] == "drained"
    assert api.handle({"op": "uncordon",
                       "node": "n3"})["health"] == "active"


def test_typed_errors_not_tracebacks(api):
    unknown = api.handle({"op": "status", "job_id": "nope-j9"})
    assert not unknown["ok"] and unknown["error"] == "BadRequest"
    bad_op = api.handle({"op": "frobnicate"})
    assert not bad_op["ok"] and bad_op["error"] == "UnknownOp"
    bad_program = _submit(api, program="nope")
    assert not bad_program["ok"] and bad_program["error"] == "BadRequest"
    response = _submit(api)
    api.handle({"op": "step", "dt": 1.0})
    bad_migrate = api.handle({"op": "migrate",
                              "app_id": response["job"]["job_id"],
                              "rank": 0, "target": "n99"})
    assert not bad_migrate["ok"]
    assert bad_migrate["error"] == "PlacementError"


def test_metrics_op_filters_by_tenant(api):
    _submit(api)
    _submit(api, tenant="globex")
    api.handle({"op": "step", "dt": 1.0})
    everything = api.handle({"op": "metrics"})["text"]
    assert 'tenant="acme"' in everything
    assert 'tenant="globex"' in everything
    acme = api.handle({"op": "metrics", "tenant": "acme"})["text"]
    assert 'tenant="acme"' in acme and 'tenant="globex"' not in acme


# ---------------------------------------------------------------------------
# real HTTP
# ---------------------------------------------------------------------------

@pytest.fixture()
def server(api):
    gw = FleetHTTPServer(api).start_background()
    yield gw
    gw.shutdown()


def _get(server, path):
    with urllib.request.urlopen(server.url + path, timeout=10) as r:
        return r.status, r.headers.get("Content-Type"), r.read().decode()


def _post(server, path, body):
    req = urllib.request.Request(
        server.url + path, data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=10) as r:
        return json.loads(r.read().decode())


def test_http_submit_step_status_roundtrip(server):
    job = _post(server, "/v1/submit",
                {"tenant": "acme", "program": "computesleep", "nprocs": 2,
                 "params": {"steps": 3, "step_time": 0.05}})
    assert job["ok"]
    _post(server, "/v1/step", {"dt": 2.0})
    status, ctype, body = _get(server,
                               f"/v1/jobs/{job['job']['job_id']}")
    assert status == 200 and ctype == "application/json"
    assert json.loads(body)["job"]["state"] == "done"
    status, _ctype, body = _get(server, "/v1/nodes")
    assert status == 200 and len(json.loads(body)["nodes"]) == 4


def test_http_metrics_endpoint_with_tenant_filter(server):
    _post(server, "/v1/submit",
          {"tenant": "acme", "program": "computesleep", "nprocs": 1,
           "params": {"steps": 1, "step_time": 0.05}})
    status, ctype, body = _get(server, "/metrics?tenant=acme")
    assert status == 200 and ctype.startswith("text/plain")
    assert "fleet_jobs_submitted" in body
    assert 'tenant="acme"' in body


def test_http_error_statuses(server):
    with pytest.raises(urllib.error.HTTPError) as err:
        _get(server, "/nope")
    assert err.value.code == 404
    with pytest.raises(urllib.error.HTTPError) as err:
        _post(server, "/v1/submit", {"tenant": "acme", "program": "nope",
                                     "nprocs": 1})
    assert err.value.code == 400
    body = json.loads(err.value.read().decode())
    assert body["error"] == "BadRequest"


# ---------------------------------------------------------------------------
# hostile clients (regressions: the gateway must outlive bad peers)
# ---------------------------------------------------------------------------

def _raw_request(server, payload: bytes) -> bytes:
    """Send raw bytes and read until the server closes the connection."""
    host, port = server.address
    with socket.create_connection((host, port), timeout=10) as sock:
        sock.sendall(payload)
        chunks = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                return chunks
            chunks += chunk


def test_http_malformed_content_length_is_400_json(server):
    """Regression: ``Content-Length: abc`` used to make ``int()`` raise
    inside ``do_POST`` — the handler died mid-request, the client saw the
    connection drop with *no* response at all.  It is the client's error:
    a 400 with the standard typed-JSON body, then close."""
    raw = _raw_request(server,
                       b"POST /v1/step HTTP/1.1\r\n"
                       b"Host: test\r\n"
                       b"Content-Length: abc\r\n"
                       b"\r\n")
    head, _, body = raw.partition(b"\r\n\r\n")
    assert head.startswith(b"HTTP/1.1 400")
    payload = json.loads(body)
    assert payload == {"ok": False, "error": "BadRequest",
                       "message": "malformed Content-Length header"}
    # The server itself is unharmed: the next request round-trips.
    status, _ctype, nodes = _get(server, "/v1/nodes")
    assert status == 200 and json.loads(nodes)["ok"]


def test_http_negative_content_length_reads_no_body(server):
    """A negative length must not make ``rfile.read`` block until EOF;
    it is treated as "no body" (empty JSON object)."""
    raw = _raw_request(server,
                       b"POST /v1/step HTTP/1.1\r\n"
                       b"Host: test\r\n"
                       b"Content-Length: -5\r\n"
                       b"Connection: close\r\n"
                       b"\r\n")
    head, _, body = raw.partition(b"\r\n\r\n")
    assert head.startswith(b"HTTP/1.1 200")
    assert json.loads(body)["ok"]


def test_http_client_hangup_mid_reply_does_not_wedge_server(server):
    """Regression: a client that sends a request and resets the
    connection before reading the reply used to surface as an unhandled
    ``BrokenPipeError``/``ConnectionResetError`` traceback in the
    handler.  The gateway must shrug it off and keep serving."""
    host, port = server.address
    for _ in range(3):
        sock = socket.create_connection((host, port), timeout=10)
        try:
            sock.sendall(b"GET /v1/nodes HTTP/1.1\r\nHost: test\r\n\r\n")
            # RST on close (no FIN handshake): the server's reply write
            # hits a dead socket.
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                            struct.pack("ii", 1, 0))
        finally:
            sock.close()
    status, _ctype, nodes = _get(server, "/v1/nodes")
    assert status == 200 and json.loads(nodes)["ok"]
