"""The fault-campaign engine: triggers, actions, injector determinism."""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.errors import CampaignError
from repro.faults import (At, CrashNode, DiskSlowdown, Every, FaultPlan,
                          FrameLossWindow, Heal, Partition, Randomly,
                          RecoverNode)
from repro.sim.engine import Engine


def build(nodes=3, seed=0):
    return Cluster.build(spec=ClusterSpec(nodes=nodes, seed=seed))


# -- triggers ---------------------------------------------------------------

def test_at_and_every_expand_to_fixed_times():
    eng = Engine()
    assert At(2.5).times(eng) == (2.5,)
    assert Every(period=1.0, count=3, start=0.5).times(eng) == (0.5, 1.5, 2.5)


def test_randomly_is_seeded_and_sorted():
    t1 = Randomly(count=4, start=1.0, end=5.0).times(Engine(seed=3))
    t2 = Randomly(count=4, start=1.0, end=5.0).times(Engine(seed=3))
    t3 = Randomly(count=4, start=1.0, end=5.0).times(Engine(seed=4))
    assert t1 == t2
    assert t1 != t3
    assert list(t1) == sorted(t1)
    assert all(1.0 <= t < 5.0 for t in t1)


# -- injector log & telemetry ----------------------------------------------

def test_fire_logs_and_counts():
    cluster = build()
    cluster.faults.fire(CrashNode(node="n1"))
    assert [(n, d["node"]) for _t, n, d in cluster.faults.log] == \
        [("crash-node", "n1")]
    assert cluster.engine.metrics.sum("faults.injected") == 1
    assert cluster.faults.log_lines() == ["t=0.000000000 crash-node node=n1"]


def test_crash_pick_random_is_seed_deterministic():
    picks = set()
    for _ in range(3):
        cluster = build(nodes=4, seed=42)
        cluster.faults.fire(CrashNode())
        picks.add(cluster.faults.log[0][2]["node"])
    assert len(picks) == 1


def test_recover_without_crash_is_a_campaign_error():
    with pytest.raises(CampaignError, match="no crashed node"):
        build().faults.fire(RecoverNode())


def test_resolve_node_errors():
    inj = build().faults
    with pytest.raises(CampaignError, match="unknown node"):
        inj.resolve_node("ghost", "random", None)
    with pytest.raises(CampaignError, match="needs app_id"):
        inj.resolve_node(None, "spare", None)
    with pytest.raises(CampaignError, match="unknown pick"):
        inj.resolve_node(None, "favourite", None)


# -- windowed actions -------------------------------------------------------

def test_partition_isolate_with_duration_heals_itself():
    cluster = build()
    eng = cluster.engine
    FaultPlan().at(1.0, Partition(isolate="n2", duration=1.0)) \
        .apply_to(cluster)
    eng.run(until=1.5)
    assert cluster.faults.partition_depth == 1
    assert not cluster.ethernet._reachable("n0", "n2")
    assert not cluster.myrinet._reachable("n0", "n2")
    assert cluster.ethernet._reachable("n0", "n1")
    eng.run(until=2.5)
    assert cluster.faults.partition_depth == 0
    assert cluster.ethernet._reachable("n0", "n2")


def test_frame_loss_window_restores_previous_loss():
    cluster = Cluster.build(spec=ClusterSpec(nodes=2, loss_prob=0.01))
    eng = cluster.engine
    FaultPlan().at(1.0, FrameLossWindow(prob=0.5, duration=2.0)) \
        .apply_to(cluster)
    eng.run(until=1.5)
    assert cluster.ethernet.loss_prob == 0.5
    assert cluster.faults.loss_depth == 2  # ambient window + this one
    eng.run(until=3.5)
    assert cluster.ethernet.loss_prob == 0.01
    assert cluster.faults.loss_depth == 1


def test_frame_loss_unknown_fabric():
    with pytest.raises(CampaignError, match="unknown fabric"):
        build().faults.fire(FrameLossWindow(prob=0.1, fabric="carrier-pigeon"))


def test_disk_slowdown_divides_and_restores():
    cluster = build(nodes=2)
    eng = cluster.engine
    disk = cluster.node("n0").disk
    before = disk.write_bandwidth
    FaultPlan().at(1.0, DiskSlowdown(factor=4.0, duration=1.0)) \
        .apply_to(cluster)
    eng.run(until=1.5)
    assert disk.write_bandwidth == pytest.approx(before / 4)
    eng.run(until=2.5)
    assert disk.write_bandwidth == pytest.approx(before)


# -- plan application -------------------------------------------------------

def test_apply_to_with_offset_shifts_times():
    cluster = build(nodes=2)
    eng = cluster.engine
    inj = FaultPlan().at(1.0, CrashNode(node="n1")).apply_to(
        cluster, offset=2.0)
    assert inj.scheduled == [3.0]
    eng.run(until=2.5)
    assert cluster.node("n1").is_up
    eng.run(until=3.5)
    assert not cluster.node("n1").is_up


def test_plan_every_fires_count_times():
    cluster = build(nodes=2)
    eng = cluster.engine
    FaultPlan().every(1.0, 3, FrameLossWindow(prob=0.2, duration=0.2),
                      start=1.0).apply_to(cluster)
    eng.run(until=5.0)
    starts = [n for _t, n, _d in cluster.faults.log if n == "frame-loss"]
    assert len(starts) == 3
    assert cluster.faults.loss_depth == 0


def test_injector_is_per_cluster_singleton():
    cluster = build()
    assert cluster.faults is cluster.faults


# -- direct fabric mechanisms (used by the Partition/Heal actions) ----------

def test_fabric_set_clear_partition():
    cluster = build(nodes=2)
    cluster.ethernet.set_partition(["n0"], ["n1"])
    assert not cluster.ethernet._reachable("n0", "n1")
    cluster.ethernet.clear_partition()
    assert cluster.ethernet._reachable("n0", "n1")
