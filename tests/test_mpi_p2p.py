"""MPI point-to-point semantics."""

import numpy as np
import pytest

from repro.calibration import BIP_LAYERS
from repro.errors import InvalidRank, InvalidTag, MpiError
from repro.mpi import ANY_SOURCE, ANY_TAG, PROC_NULL
from repro.net import BIP_MYRINET

from tests.mpi_helpers import make_world, run_ranks


def test_send_recv_roundtrip():
    cluster, apis = make_world(2)

    def prog(mpi, rank):
        if rank == 0:
            yield from mpi.send({"a": 7, "b": 3.14}, dest=1, tag=11)
            return None
        data = yield from mpi.recv(source=0, tag=11)
        return data

    results = run_ranks(cluster, apis, prog)
    assert results[1] == {"a": 7, "b": 3.14}


def test_rank_and_size():
    cluster, apis = make_world(3)

    def prog(mpi, rank):
        assert mpi.rank == rank
        assert mpi.size == 3
        return rank
        yield  # pragma: no cover

    assert run_ranks(cluster, apis, prog) == [0, 1, 2]


def test_numpy_payloads():
    cluster, apis = make_world(2)
    data = np.arange(1000, dtype=np.float64)

    def prog(mpi, rank):
        if rank == 0:
            yield from mpi.send(data, dest=1, tag=7)
        else:
            got = yield from mpi.recv(source=0, tag=7)
            assert np.array_equal(got, data)
            return True

    assert run_ranks(cluster, apis, prog)[1]


def test_one_way_latency_matches_fig5_model():
    cluster, apis = make_world(2)
    size = 4096

    def prog(mpi, rank):
        if rank == 0:
            yield from mpi.send(b"x" * size, dest=1, tag=0, size=size)
            return None
        t0 = cluster.engine.now
        yield from mpi.recv(source=0, tag=0)
        return cluster.engine.now - t0

    elapsed = run_ranks(cluster, apis, prog)[1]
    # Full app-to-app model: all fixed layers + wire size term (+ header).
    from repro.mpi.constants import MSG_HEADER
    expected = BIP_LAYERS.one_way_fixed + (size + MSG_HEADER) / BIP_MYRINET.bandwidth
    assert elapsed == pytest.approx(expected, rel=1e-6)


def test_tag_matching_selects_correct_message():
    cluster, apis = make_world(2)

    def prog(mpi, rank):
        if rank == 0:
            yield from mpi.send("tagged-5", dest=1, tag=5)
            yield from mpi.send("tagged-9", dest=1, tag=9)
        else:
            nine = yield from mpi.recv(source=0, tag=9)
            five = yield from mpi.recv(source=0, tag=5)
            return nine, five

    assert run_ranks(cluster, apis, prog)[1] == ("tagged-9", "tagged-5")


def test_any_source_any_tag_wildcards():
    cluster, apis = make_world(3)

    def prog(mpi, rank):
        if rank in (0, 1):
            yield from mpi.send(f"from-{rank}", dest=2, tag=rank + 10)
        else:
            got = []
            for _ in range(2):
                data, st = yield from mpi.recv(source=ANY_SOURCE,
                                               tag=ANY_TAG, with_status=True)
                got.append((st.source, st.tag, data))
            return sorted(got)

    out = run_ranks(cluster, apis, prog)[2]
    assert out == [(0, 10, "from-0"), (1, 11, "from-1")]


def test_non_overtaking_same_source_same_tag():
    cluster, apis = make_world(2)
    n = 20

    def prog(mpi, rank):
        if rank == 0:
            for i in range(n):
                yield from mpi.send(i, dest=1, tag=3)
        else:
            got = []
            for _ in range(n):
                got.append((yield from mpi.recv(source=0, tag=3)))
            return got

    assert run_ranks(cluster, apis, prog)[1] == list(range(n))


def test_isend_irecv_waitall():
    cluster, apis = make_world(2)

    def prog(mpi, rank):
        if rank == 0:
            reqs = [mpi.isend(i, dest=1, tag=i) for i in range(5)]
            yield from mpi.waitall(reqs)
        else:
            reqs = [mpi.irecv(source=0, tag=i) for i in range(5)]
            data = yield from mpi.waitall(reqs)
            return data

    assert run_ranks(cluster, apis, prog)[1] == [0, 1, 2, 3, 4]


def test_irecv_posted_before_arrival():
    cluster, apis = make_world(2)

    def prog(mpi, rank):
        if rank == 1:
            req = mpi.irecv(source=0, tag=0)
            assert not req.done          # nothing sent yet
            data = yield from req.wait()
            return data
        yield cluster.engine.timeout(0.01)
        yield from mpi.send("late", dest=1)

    assert run_ranks(cluster, apis, prog)[1] == "late"


def test_request_test_polling():
    cluster, apis = make_world(2)

    def prog(mpi, rank):
        if rank == 0:
            yield from mpi.send("x", dest=1)
        else:
            req = mpi.irecv(source=0)
            done, _ = req.test()
            assert not done
            polls = 0
            while not req.test()[0]:
                polls += 1
                yield cluster.engine.timeout(1e-5)
            return polls

    assert run_ranks(cluster, apis, prog)[1] > 0


def test_waitany_returns_first():
    cluster, apis = make_world(3)

    def prog(mpi, rank):
        if rank == 0:
            yield cluster.engine.timeout(0.1)
            yield from mpi.send("slow", dest=2, tag=0)
        elif rank == 1:
            yield from mpi.send("fast", dest=2, tag=1)
        else:
            reqs = [mpi.irecv(source=0, tag=0), mpi.irecv(source=1, tag=1)]
            idx, data = yield from mpi.waitany(reqs)
            return idx, data

    assert run_ranks(cluster, apis, prog)[2] == (1, "fast")


def test_sendrecv_exchange():
    cluster, apis = make_world(2)

    def prog(mpi, rank):
        other = 1 - rank
        got = yield from mpi.sendrecv(f"hello-{rank}", dest=other,
                                      source=other)
        return got

    assert run_ranks(cluster, apis, prog) == ["hello-1", "hello-0"]


def test_proc_null_send_recv_are_noops():
    cluster, apis = make_world(1)

    def prog(mpi, rank):
        yield from mpi.send("void", dest=PROC_NULL)
        data = yield from mpi.recv(source=PROC_NULL)
        return data

    assert run_ranks(cluster, apis, prog) == [None]


def test_probe_then_recv():
    cluster, apis = make_world(2)

    def prog(mpi, rank):
        if rank == 0:
            yield from mpi.send(b"12345", dest=1, tag=4)
        else:
            st = yield from mpi.probe(source=ANY_SOURCE, tag=ANY_TAG)
            data = yield from mpi.recv(source=st.source, tag=st.tag)
            return st.nbytes, data

    nbytes, data = run_ranks(cluster, apis, prog)[1]
    assert data == b"12345"
    assert nbytes == 5


def test_iprobe_nonblocking():
    cluster, apis = make_world(2)

    def prog(mpi, rank):
        if rank == 1:
            assert mpi.iprobe() is None
            yield from mpi.send("go", dest=0)
        else:
            yield from mpi.recv(source=1)
            assert mpi.iprobe() is None
            return True

    assert run_ranks(cluster, apis, prog)[0]


def test_invalid_rank_rejected():
    cluster, apis = make_world(2)

    def prog(mpi, rank):
        with pytest.raises(InvalidRank):
            yield from mpi.send("x", dest=5)
        return True

    assert all(run_ranks(cluster, apis, prog))


def test_negative_user_tag_rejected():
    cluster, apis = make_world(2)

    def prog(mpi, rank):
        with pytest.raises(InvalidTag):
            yield from mpi.send("x", dest=0, tag=-3)
        return True

    assert all(run_ranks(cluster, apis, prog))


def test_self_send_recv():
    cluster, apis = make_world(1)

    def prog(mpi, rank):
        req = mpi.irecv(source=0, tag=1)
        yield from mpi.send("to-myself", dest=0, tag=1)
        data = yield from req.wait()
        return data

    assert run_ranks(cluster, apis, prog) == ["to-myself"]


def test_channel_counters_track_data_messages():
    cluster, apis = make_world(2)

    def prog(mpi, rank):
        if rank == 0:
            for _ in range(3):
                yield from mpi.send("m", dest=1)
        else:
            for _ in range(3):
                yield from mpi.recv(source=0)

    run_ranks(cluster, apis, prog)
    assert apis[0].endpoint.sent_count == {1: 3}
    assert apis[1].endpoint.recv_count == {0: 3}


def test_blocking_mode_without_polling_thread():
    cluster, apis = make_world(2, polling=False)

    def prog(mpi, rank):
        if rank == 0:
            yield from mpi.send("no-poll", dest=1)
        else:
            data = yield from mpi.recv(source=0)
            return data

    assert run_ranks(cluster, apis, prog)[1] == "no-poll"


def test_tcp_transport_slower_than_bip():
    def elapsed(transport):
        cluster, apis = make_world(2, transport=transport)

        def prog(mpi, rank):
            if rank == 0:
                yield from mpi.send(b"x", dest=1)
            else:
                yield from mpi.recv(source=0)
                return cluster.engine.now

        return run_ranks(cluster, apis, prog)[1]

    assert elapsed("tcp-ethernet") > 3 * elapsed("bip-myrinet")
