"""Unit tests for the cluster model: nodes, architectures, disks, faults."""

import pytest

from repro.calibration import NATIVE_DISK_BANDWIDTH
from repro.cluster import (Cluster, DEFAULT_ARCH, NodeState, TABLE2_MACHINES,
                           arch_by_name)
from repro.errors import ClusterError, Interrupt, NodeDown
from repro.faults import CrashNode


def test_build_creates_wired_nodes():
    cluster = Cluster.build(nodes=3)
    assert sorted(cluster.nodes) == ["n0", "n1", "n2"]
    for node in cluster.nodes.values():
        assert node.nic("tcp-ethernet").is_up
        assert node.nic("bip-myrinet").is_up


def test_duplicate_node_id_rejected():
    cluster = Cluster.build(nodes=1)
    with pytest.raises(ClusterError):
        cluster.add_node("n0")


def test_unknown_node_lookup():
    with pytest.raises(ClusterError):
        Cluster.build(nodes=1).node("ghost")


def test_table2_has_six_machines_with_paper_properties():
    assert len(TABLE2_MACHINES) == 6
    endians = {m.endianness for m in TABLE2_MACHINES}
    assert endians == {"little", "big"}
    word_lengths = sorted({m.word_bits for m in TABLE2_MACHINES})
    assert word_lengths == [32, 64]
    # Exactly one 64-bit machine: the Alpha.
    sixty_four = [m for m in TABLE2_MACHINES if m.word_bits == 64]
    assert len(sixty_four) == 1 and "Alpha" in sixty_four[0].name


def test_vm_int_bits_loses_tag_bit():
    assert DEFAULT_ARCH.vm_int_bits == 31
    alpha = arch_by_name("Dual Alpha DS20 500 MHz")
    assert alpha.vm_int_bits == 63


def test_same_representation():
    linux_pii = arch_by_name("Intel P-II 350 MHz, i686")
    winnt_pii = arch_by_name("Intel P-II, 350 MHz")
    sun = arch_by_name("Sun Ultra Enterprise 3000")
    assert linux_pii.same_representation(winnt_pii)
    assert not linux_pii.same_representation(sun)


def test_arch_by_name_unknown():
    with pytest.raises(KeyError):
        arch_by_name("PDP-11")


def test_crash_interrupts_hosted_processes():
    cluster = Cluster.build(nodes=1)
    eng = cluster.engine
    node = cluster.node("n0")

    def worker():
        try:
            yield eng.timeout(100)
            return "finished"
        except Interrupt as exc:
            return ("killed", str(exc.cause))

    p = node.spawn(worker())
    cluster.faults.at(5, CrashNode(node="n0"))
    result = eng.run(p)
    assert result[0] == "killed"
    assert "n0" in result[1]


def test_crash_twice_is_error():
    cluster = Cluster.build(nodes=1)
    cluster.crash_node("n0")
    with pytest.raises(ClusterError):
        cluster.crash_node("n0")


def test_recover_bumps_incarnation_and_rewires():
    cluster = Cluster.build(nodes=2)
    node = cluster.node("n0")
    assert node.incarnation == 0
    cluster.crash_node("n0")
    assert node.state is NodeState.DOWN
    cluster.recover_node("n0")
    assert node.incarnation == 1
    assert node.is_up
    assert node.nic("tcp-ethernet").is_up


def test_recover_up_node_is_error():
    cluster = Cluster.build(nodes=1)
    with pytest.raises(ClusterError):
        cluster.recover_node("n0")


def test_disable_enable_cycle():
    cluster = Cluster.build(nodes=2)
    node = cluster.node("n0")
    node.disable()
    assert node.state is NodeState.DISABLED
    assert node not in cluster.schedulable_nodes()
    assert len(cluster.schedulable_nodes()) == 1
    node.enable()
    assert node in cluster.schedulable_nodes()


def test_disabled_node_keeps_running_processes():
    cluster = Cluster.build(nodes=1)
    eng = cluster.engine
    node = cluster.node("n0")

    def worker():
        yield eng.timeout(10)
        return "done"

    p = node.spawn(worker())
    node.disable()
    assert eng.run(p) == "done"


def test_spawn_on_down_node_raises():
    cluster = Cluster.build(nodes=1)
    cluster.crash_node("n0")

    def worker():
        yield cluster.engine.timeout(1)

    with pytest.raises(NodeDown):
        cluster.node("n0").spawn(worker())


def test_remove_node_crashes_and_forgets_it():
    cluster = Cluster.build(nodes=2)
    events = []
    cluster.watchers.append(lambda nid, ev: events.append((nid, ev)))
    cluster.remove_node("n1")
    assert "n1" not in cluster.nodes
    assert ("n1", "remove") in events


def test_disk_write_time_matches_bandwidth():
    cluster = Cluster.build(nodes=1)
    eng = cluster.engine
    disk = cluster.node("n0").disk

    def writer():
        yield from disk.write(NATIVE_DISK_BANDWIDTH)  # exactly 1 second
        return eng.now

    assert eng.run(eng.process(writer())) == pytest.approx(1.0)
    assert disk.bytes_written == NATIVE_DISK_BANDWIDTH


def test_disk_serializes_writers():
    cluster = Cluster.build(nodes=1)
    eng = cluster.engine
    disk = cluster.node("n0").disk
    ends = []

    def writer():
        yield from disk.write(NATIVE_DISK_BANDWIDTH / 2)  # 0.5 s each
        ends.append(eng.now)

    eng.process(writer())
    eng.process(writer())
    eng.run()
    assert ends == [pytest.approx(0.5), pytest.approx(1.0)]


def test_disk_survives_crash_recover():
    cluster = Cluster.build(nodes=1)
    node = cluster.node("n0")
    disk_before = node.disk
    cluster.crash_node("n0")
    cluster.recover_node("n0")
    assert node.disk is disk_before  # stable storage


def test_scheduled_partition_and_heal():
    from repro.faults import FaultPlan, Heal, Partition
    cluster = Cluster.build(nodes=2)
    eng = cluster.engine
    (FaultPlan()
     .at(1.0, Partition(groups=(("n0",), ("n1",))))
     .at(2.0, Heal())
     .apply_to(cluster))
    eng.run(until=1.5)
    assert not cluster.ethernet._reachable("n0", "n1")
    eng.run(until=2.5)
    assert cluster.ethernet._reachable("n0", "n1")


def test_injector_at_schedules_and_logs_all_actions():
    from repro.faults.actions import CrashNode, Heal, Partition, RecoverNode
    cluster = Cluster.build(nodes=2)
    eng = cluster.engine
    cluster.faults.at(1.0, Partition(groups=(("n0",), ("n1",))))
    cluster.faults.at(2.0, Heal())
    eng.run(until=1.5)
    assert not cluster.ethernet._reachable("n0", "n1")
    eng.run(until=2.5)
    assert cluster.ethernet._reachable("n0", "n1")
    cluster.faults.at(3.0, CrashNode(node="n1"))
    cluster.faults.at(4.0, RecoverNode(node="n1"))
    eng.run(until=3.5)
    assert not cluster.node("n1").is_up
    eng.run(until=4.5)
    assert cluster.node("n1").is_up
    # Everything routes through the one injector: all four scheduled
    # actions show up in its log.
    assert [name for _t, name, _d in cluster.faults.log] == [
        "partition", "heal", "crash-node", "recover-node"]


def test_live_processes_prunes_dead():
    cluster = Cluster.build(nodes=1)
    eng = cluster.engine
    node = cluster.node("n0")

    def quick():
        yield eng.timeout(1)

    node.spawn(quick())
    assert len(node.live_processes) == 1
    eng.run()
    assert node.live_processes == []
