"""JobScheduler unit tests: quotas, ordering, typed rejections, oracle.

Pure scheduler-level tests over a hand-built :class:`FleetView` — no
simulated cluster, so these pin the admission semantics in isolation:
deterministic FIFO-within-priority order, per-tenant quota enforcement,
typed rejection reasons, and the FleetOracle's invariants.
"""

import pytest

from repro.apps import ComputeSleep
from repro.core import AppSpec, FaultPolicy
from repro.errors import FleetOracleViolation
from repro.fleet import (Admission, FleetOracle, FleetView, JobScheduler,
                         JobState, NodeHealth, REJECT_QUOTA,
                         REJECT_SHUTDOWN, TenantQuota)


def make_view(nodes=4):
    view = FleetView()
    for i in range(nodes):
        info = view.row(f"n{i}")
        info.last_heartbeat = 0.0
    return view


def spec(nprocs=2, tenant="acme", priority=0, placement=None):
    return AppSpec(program=ComputeSleep, nprocs=nprocs,
                   params={"steps": 3, "step_time": 0.05},
                   ft_policy=FaultPolicy.RESTART,
                   placement=placement, tenant=tenant, priority=priority)


def test_job_ids_are_deterministic_per_tenant():
    sched = JobScheduler(make_view())
    ids = [sched.submit(spec(tenant=t), 0.0).job_id
           for t in ("acme", "acme", "globex", "acme")]
    assert ids == ["acme-j1", "acme-j2", "globex-j1", "acme-j3"]


def test_fifo_within_priority_order():
    sched = JobScheduler(make_view())
    low1 = sched.submit(spec(priority=0), 0.0)
    high = sched.submit(spec(priority=5, tenant="globex"), 0.0)
    low2 = sched.submit(spec(priority=0, tenant="zeta"), 0.0)
    later = sched.submit(spec(priority=5), 1.0)     # higher prio, later t
    order = [j.job_id for j in sched.pending()]
    assert order == [high.job_id, later.job_id, low1.job_id, low2.job_id]
    admitted = sched.admit_ready(2.0)
    assert [j.job_id for j in admitted] == order


def test_oversized_submission_rejected_immediately_with_typed_reason():
    sched = JobScheduler(make_view(),
                         quotas={"acme": TenantQuota(max_ranks=4)})
    job = sched.submit(spec(nprocs=9), 0.0)
    assert job.state == JobState.REJECTED
    assert job.reason == REJECT_QUOTA
    assert job.terminal


def test_quota_blocks_without_blocking_other_tenants():
    sched = JobScheduler(
        make_view(),
        quotas={"acme": TenantQuota(max_ranks=2, max_apps=1)})
    first = sched.submit(spec(nprocs=2), 0.0)
    second = sched.submit(spec(nprocs=2), 0.0)           # same tenant
    other = sched.submit(spec(nprocs=2, tenant="globex"), 0.0)
    admitted = sched.admit_ready(1.0)
    # acme's second job is quota-blocked but globex sails past it.
    assert {j.job_id for j in admitted} == {first.job_id, other.job_id}
    assert second.state == JobState.QUEUED
    # Capacity frees -> the blocked job admits on the next round.
    sched.complete(first, JobState.DONE, 2.0)
    admitted = sched.admit_ready(3.0)
    assert [j.job_id for j in admitted] == [second.job_id]
    assert second.admitted_at == 3.0


def test_placement_avoids_ineligible_nodes():
    view = make_view(4)
    view.row("n1").health = NodeHealth.CORDONED
    view.row("n2").suspect = True
    sched = JobScheduler(view)
    job = sched.submit(spec(nprocs=4), 0.0)
    sched.admit_ready(1.0)
    assert job.state == JobState.RUNNING
    used = set(job.placement.values())
    assert used <= {"n0", "n3"}         # cycles over the eligible pair
    adm = sched.admissions[0]
    assert set(adm.forbidden) == {"n1", "n2"}


def test_explicit_placement_waits_for_eligibility():
    view = make_view(3)
    view.row("n2").health = NodeHealth.DRAINING
    sched = JobScheduler(view)
    job = sched.submit(spec(nprocs=2, placement={0: "n0", 1: "n2"}), 0.0)
    sched.admit_ready(1.0)
    assert job.state == JobState.QUEUED      # named node not eligible
    view.row("n2").health = NodeHealth.ACTIVE
    sched.admit_ready(2.0)
    assert job.state == JobState.RUNNING
    assert job.placement == {0: "n0", 1: "n2"}


def test_least_loaded_primary_and_ring_successors():
    view = make_view(4)
    view.row("n0").ranks = 3
    view.row("n1").ranks = 0
    view.row("n2").ranks = 1
    sched = JobScheduler(view)
    job = sched.submit(spec(nprocs=2), 0.0)
    sched.admit_ready(1.0)
    assert job.placement[0] == "n1"          # least loaded wins rank 0
    assert job.placement[1] != "n1"          # successor elsewhere


def test_shutdown_rejects_queued_jobs_with_typed_reason():
    sched = JobScheduler(make_view(),
                         quotas={"acme": TenantQuota(max_apps=1)})
    first = sched.submit(spec(), 0.0)
    second = sched.submit(spec(), 0.0)
    sched.admit_ready(1.0)
    rejected = sched.reject_queued(REJECT_SHUTDOWN, 2.0)
    assert [j.job_id for j in rejected] == [second.job_id]
    assert second.reason == REJECT_SHUTDOWN
    assert first.state == JobState.RUNNING


def test_oracle_green_run_and_violation_paths():
    sched = JobScheduler(make_view(),
                         quotas={"acme": TenantQuota(max_ranks=4)})
    job = sched.submit(spec(nprocs=2), 0.0)
    sched.admit_ready(1.0)
    sched.complete(job, JobState.DONE, 2.0)
    assert FleetOracle().check(sched) == []

    # A fabricated quota breach and a forbidden placement must both trip.
    sched.high_water["acme"] = (9, 1)
    sched.admissions.append(Admission(
        job_id="acme-j9", tenant="acme", time=3.0,
        placement={0: "n1"}, forbidden=("n1",),
        ranks_after=2, apps_after=1))
    violations = FleetOracle().check(sched)
    assert any("quota breach" in v for v in violations)
    assert any("forbidden placement" in v for v in violations)
    with pytest.raises(FleetOracleViolation):
        FleetOracle().verify(sched)


def test_oracle_rejects_untyped_rejection_and_non_terminal_jobs():
    sched = JobScheduler(make_view())
    job = sched.submit(spec(), 0.0)
    job.state = JobState.REJECTED
    job.reason = "because"                   # not a typed reason
    hung = sched.submit(spec(tenant="globex"), 0.0)
    violations = FleetOracle().check(sched)
    assert any("untyped rejection" in v for v in violations)
    assert any(f"non-terminal job: {hung.job_id}" in v
               for v in violations)
    # Mid-run checks skip the terminal requirement.
    assert not any("non-terminal" in v for v in
                   FleetOracle().check(sched, require_terminal=False))
