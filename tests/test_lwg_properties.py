"""Property-based tests of lightweight-group guarantees under random
schedules of casts, membership ops, and crashes."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.lwg import LwgCast

from tests.test_lwg import LwgHarness, eps

action = st.one_of(
    st.tuples(st.just("cast"), st.integers(0, 3), st.integers(0, 99)),
    st.tuples(st.just("join"), st.integers(0, 3)),
    st.tuples(st.just("leave"), st.integers(0, 3)),
    st.tuples(st.just("crash"), st.integers(1, 3)),
)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(actions=st.lists(action, min_size=1, max_size=10),
       seed=st.integers(0, 2**16))
def test_lwg_membership_replicas_stay_identical(actions, seed):
    h = LwgHarness(nodes=4, seed=seed)
    h.boot_all()
    h.run(until=2.0)
    h.lwg["n0"].create("a", eps(h, "n0", "n1"))
    h.run(until=2.5)

    crashed = set()
    t = 2.5
    for act in actions:
        kind = act[0]
        nid = f"n{act[1]}"
        if nid in crashed:
            continue
        if kind == "cast":
            mgr = h.lwg[nid]
            if mgr.endpoint in mgr.members("a"):
                mgr.cast("a", ("m", nid, act[2]))
        elif kind == "join":
            h.lwg[nid].join("a", h.members[nid].endpoint)
        elif kind == "leave":
            h.lwg[nid].leave("a", h.members[nid].endpoint)
        elif kind == "crash":
            if len(crashed) >= 2:
                continue
            crashed.add(nid)
            h.cluster.crash_node(nid)
            t += 1.0
        t += 0.05
        h.run(until=t)
    h.run(until=t + 6.0)

    survivors = [n for n in ("n0", "n1", "n2", "n3") if n not in crashed]
    # 1. Every surviving daemon holds the identical member list replica.
    replicas = {tuple(h.lwg[n].members("a")) for n in survivors}
    assert len(replicas) == 1
    members = replicas.pop()
    # 2. No crashed daemon lingers in the lightweight group.
    assert all(m.node not in crashed for m in members)
    # 3. Surviving members delivered identical cast sequences.
    seqs = []
    for n in survivors:
        casts = [e.payload for e in h.lwg_log.get((n, "a"), ())
                 if isinstance(e, LwgCast)]
        if h.members[n].endpoint in members:
            seqs.append(casts)
    if len(seqs) > 1:
        # Compare only the common suffix window: members that joined later
        # legitimately missed earlier casts, so check pairwise common tail.
        shortest = min(len(s) for s in seqs)
        if shortest:
            tails = {tuple(s[-shortest:]) for s in seqs}
            # All tails must be consistent orderings of the same stream:
            # the shorter ones are suffixes of the longer ones.
            longest = max(seqs, key=len)
            for s in seqs:
                if s:
                    assert longest[-len(s):] == s


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(n_casts=st.integers(1, 10), seed=st.integers(0, 2**16))
def test_lwg_no_duplicate_delivery_under_churn(n_casts, seed):
    h = LwgHarness(nodes=3, seed=seed)
    h.boot_all()
    h.run(until=2.0)
    for nid in ("n0", "n1"):
        h.watch(nid, "a")
    h.lwg["n0"].create("a", eps(h, "n0", "n1", "n2"))
    h.run(until=2.5)
    for i in range(n_casts):
        h.lwg["n0"].cast("a", ("x", i))
    # Membership churn mid-stream.
    h.lwg["n2"].leave("a")
    h.run(until=8.0)
    for nid in ("n0", "n1"):
        got = h.lwg_casts(nid, "a")
        assert got == [("x", i) for i in range(n_casts)], nid
