"""End-to-end Starfish: boot, submit, run, client protocol."""

import pytest

from repro.apps import (BagOfTasks, ComputeSleep, Jacobi1D, MonteCarloPi,
                        PingPong)
from repro.calibration import RTT_1BYTE_BIP, RTT_1BYTE_TCP
from repro.core import AppSpec, CheckpointConfig, FaultPolicy, StarfishCluster


def test_daemons_converge_on_boot():
    sf = StarfishCluster.build(nodes=4)
    views = {tuple(d.gm.view.members) for d in sf.live_daemons()}
    assert len(views) == 1
    assert len(views.pop()) == 4


def test_run_computesleep():
    sf = StarfishCluster.build(nodes=4)
    results = sf.run(AppSpec(program=ComputeSleep, nprocs=4,
                             params={"steps": 5, "step_time": 0.01}))
    assert results == {0: 5, 1: 5, 2: 5, 3: 5}


def test_run_montecarlo_pi():
    sf = StarfishCluster.build(nodes=4)
    results = sf.run(AppSpec(program=MonteCarloPi, nprocs=4,
                             params={"shots": 40_000, "chunk": 2000}))
    for rank, pi in results.items():
        assert pi == pytest.approx(3.14159, abs=0.1), rank


def test_run_jacobi():
    sf = StarfishCluster.build(nodes=4)
    results = sf.run(AppSpec(program=Jacobi1D, nprocs=4,
                             params={"n": 256, "iterations": 40,
                                     "iters_per_step": 10}))
    iters, residual, total = results[0]
    assert iters == 40
    assert residual < 1.0
    assert 0 < total < 256


def test_run_bag_of_tasks():
    sf = StarfishCluster.build(nodes=4)
    results = sf.run(AppSpec(program=BagOfTasks, nprocs=4,
                             params={"tasks": 12, "task_time": 0.01}))
    assert results[0] == list(range(12))
    # Workers did all the tasks between them.
    assert sum(results[r] for r in (1, 2, 3)) == 12


def test_pingpong_matches_paper_rtt():
    sf = StarfishCluster.build(nodes=2)
    results = sf.run(AppSpec(program=PingPong, nprocs=2,
                             params={"sizes": [1], "reps": 10}))
    rtt = results[0][1]
    assert rtt == pytest.approx(RTT_1BYTE_BIP, rel=0.02)


def test_pingpong_over_tcp():
    sf = StarfishCluster.build(nodes=2)
    results = sf.run(AppSpec(program=PingPong, nprocs=2,
                             params={"sizes": [1], "reps": 10},
                             transport="tcp-ethernet"))
    rtt = results[0][1]
    assert rtt == pytest.approx(RTT_1BYTE_TCP, rel=0.02)


def test_single_rank_app():
    sf = StarfishCluster.build(nodes=2)
    results = sf.run(AppSpec(program=ComputeSleep, nprocs=1,
                             params={"steps": 3}))
    assert results == {0: 3}


def test_more_ranks_than_nodes():
    sf = StarfishCluster.build(nodes=2)
    results = sf.run(AppSpec(program=MonteCarloPi, nprocs=4,
                             params={"shots": 8000}))
    assert len(results) == 4


def test_two_apps_share_cluster():
    sf = StarfishCluster.build(nodes=4)
    h1 = sf.submit(AppSpec(program=ComputeSleep, nprocs=2,
                           params={"steps": 4}))
    h2 = sf.submit(AppSpec(program=MonteCarloPi, nprocs=2,
                           params={"shots": 5000}))
    r1 = sf.run_to_completion(h1)
    r2 = sf.run_to_completion(h2)
    assert r1 == {0: 4, 1: 4}
    assert r2[0] == pytest.approx(3.14, abs=0.2)


def test_program_exception_marks_app_failed():
    from repro.core.program import StarfishProgram
    from repro.errors import DaemonError

    class Buggy(StarfishProgram):
        def setup(self, ctx):
            self.state["i"] = 0

        def step(self, ctx):
            self.state["i"] += 1
            if self.state["i"] >= 2 and ctx.rank == 1:
                raise ValueError("boom")
            yield from ctx.sleep(0.001)

        def is_done(self, ctx):
            return self.state["i"] >= 5

    sf = StarfishCluster.build(nodes=2)
    handle = sf.submit(AppSpec(program=Buggy, nprocs=2))
    with pytest.raises(DaemonError, match="failed"):
        sf.run_to_completion(handle, timeout=30)


def test_explicit_placement():
    sf = StarfishCluster.build(nodes=3)
    handle = sf.submit(AppSpec(program=ComputeSleep, nprocs=2,
                               params={"steps": 2},
                               placement={0: "n2", 1: "n2"}))
    sf.run_to_completion(handle)
    rec = handle._record()
    assert rec.placement == {0: "n2", 1: "n2"}


def test_user_initiated_checkpoint_downcall():
    from repro.core.program import StarfishProgram

    class SelfCkpt(StarfishProgram):
        def setup(self, ctx):
            self.state.update(i=0, versions=[])

        def step(self, ctx):
            yield from ctx.sleep(0.005)
            self.state["i"] += 1
            if self.state["i"] == 2 and ctx.rank == 0:
                v = yield from ctx.mpi.checkpoint()
                self.state["versions"].append(v)

        def is_done(self, ctx):
            return self.state["i"] >= 4

        def finalize(self, ctx):
            return self.state["versions"]

    sf = StarfishCluster.build(nodes=2)
    results = sf.run(AppSpec(
        program=SelfCkpt, nprocs=2,
        checkpoint=CheckpointConfig(protocol="stop-and-sync")))
    assert results[0] == [1]
    assert sf.store.latest_committed("app1") == 1 or \
        sf.store.committed_versions(list(sf.store._committed)[0]) == [1]
