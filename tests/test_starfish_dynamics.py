"""Dynamic behaviour: MPI-2 spawning, node addition/recovery, migration."""

import pytest

from repro.apps import BagOfTasks, ComputeSleep, MonteCarloPi
from repro.core import AppSpec, CheckpointConfig, FaultPolicy, StarfishCluster
from repro.daemon import AppStatus


def test_mpi2_spawn_grows_bag_of_tasks():
    sf = StarfishCluster.build(nodes=4)
    handle = sf.submit(AppSpec(
        program=BagOfTasks, nprocs=2,          # master + one worker
        params={"tasks": 16, "task_time": 0.05,
                "grow_after": 4, "grow_by": 2},
        ft_policy=FaultPolicy.VIEW_NOTIFY))
    results = sf.run_to_completion(handle, timeout=300)
    record = handle._record()
    # The world grew to 4 processes.
    assert len(record.placement) == 4
    assert record.world_version >= 1
    assert results[0] == list(range(16))
    # The spawned workers actually computed tasks.
    late_workers = [r for r in results if r >= 2]
    assert late_workers
    assert sum(results[r] for r in results if r != 0) == 16


def test_added_node_becomes_schedulable():
    sf = StarfishCluster.build(nodes=2)
    sf.add_node("n9")
    sf.settle()
    # All daemons (incl. the new one) share the 3-member view.
    for daemon in sf.live_daemons():
        assert len(daemon.gm.view.members) == 3
    handle = sf.submit(AppSpec(program=ComputeSleep, nprocs=3,
                               params={"steps": 3, "step_time": 0.01}))
    sf.run_to_completion(handle)
    assert "n9" in handle._record().placement.values()


def test_addnode_via_management_command():
    sf = StarfishCluster.build(nodes=2)
    client = sf.client()

    def session():
        c = yield from client.connect()
        yield from c.login("admin", "adminpw", mgmt=True)
        yield from c.must("ADDNODE n7")
        return True

    proc = sf.engine.process(session())
    sf.engine.run(until=sf.engine.now + 5.0)
    assert proc.triggered and proc.ok
    sf.settle()
    assert "n7" in sf.cluster.nodes
    assert any(d.node.node_id == "n7" for d in sf.live_daemons())


def test_crashed_node_recovers_and_hosts_new_work():
    sf = StarfishCluster.build(nodes=3)
    sf.crash_node("n2")
    sf.engine.run(until=sf.engine.now + 3.0)
    # Group shrank to 2.
    assert len(sf.any_daemon().gm.view.members) == 2
    sf.recover_node("n2")
    sf.settle()
    assert len(sf.any_daemon().gm.view.members) == 3
    handle = sf.submit(AppSpec(program=ComputeSleep, nprocs=3,
                               params={"steps": 3, "step_time": 0.01}))
    results = sf.run_to_completion(handle)
    assert len(results) == 3
    assert "n2" in handle._record().placement.values()


def test_restart_migrates_rank_to_recovered_state_elsewhere():
    # Checkpoint/restart doubles as migration (paper §3.2.1): the rank's
    # state, written on n1's disk, continues on another machine.
    sf = StarfishCluster.build(nodes=3)
    handle = sf.submit(AppSpec(
        program=ComputeSleep, nprocs=2,
        params={"steps": 40, "step_time": 0.05, "state_bytes": 500_000},
        ft_policy=FaultPolicy.RESTART,
        checkpoint=CheckpointConfig(protocol="stop-and-sync", level="vm",
                                    interval=0.5),
        placement={0: "n0", 1: "n1"}))
    sf.engine.run(until=sf.engine.now + 1.4)
    assert sf.store.latest_committed(handle.app_id) is not None
    sf.crash_node("n1")
    results = sf.run_to_completion(handle, timeout=300)
    assert results == {0: 40, 1: 40}
    assert handle._record().placement[1] == "n2"


def test_crash_during_restart_triggers_second_restart():
    sf = StarfishCluster.build(nodes=4)
    handle = sf.submit(AppSpec(
        program=ComputeSleep, nprocs=2,
        params={"steps": 60, "step_time": 0.05},
        ft_policy=FaultPolicy.RESTART,
        checkpoint=CheckpointConfig(protocol="stop-and-sync", level="vm",
                                    interval=0.6),
        placement={0: "n0", 1: "n1"}))
    sf.engine.run(until=sf.engine.now + 1.5)
    sf.crash_node("n1")
    sf.engine.run(until=sf.engine.now + 0.3)   # mid-recovery
    # Kill the replacement candidate as well.
    placement = handle._record().placement
    second_victim = placement[1]
    if sf.cluster.nodes[second_victim].is_up and second_victim != "n0":
        sf.crash_node(second_victim)
    results = sf.run_to_completion(handle, timeout=600)
    assert results == {0: 60, 1: 60}
    assert handle.restarts >= 1


def test_disabled_node_excluded_from_restart_placement():
    sf = StarfishCluster.build(nodes=4)
    client = sf.client()

    def session():
        c = yield from client.connect()
        yield from c.login("admin", "adminpw", mgmt=True)
        yield from c.must("DISABLE n3")
        return True

    sf.engine.process(session())
    sf.engine.run(until=sf.engine.now + 2.0)
    handle = sf.submit(AppSpec(
        program=ComputeSleep, nprocs=2,
        params={"steps": 40, "step_time": 0.05},
        ft_policy=FaultPolicy.RESTART,
        checkpoint=CheckpointConfig(protocol="stop-and-sync", level="vm",
                                    interval=0.5),
        placement={0: "n0", 1: "n1"}))
    sf.engine.run(until=sf.engine.now + 1.4)
    sf.crash_node("n1")
    sf.run_to_completion(handle, timeout=300)
    assert handle._record().placement[1] == "n2"   # n3 was disabled


def test_montecarlo_uses_joiner_after_spawn():
    # An explicitly dynamic MPI-2 program: rank 0 asks for more processes
    # mid-run and the allreduce ring simply widens.
    from repro.core.program import StarfishProgram
    from repro.mpi import SUM

    class GrowingPi(MonteCarloPi):
        def step(self, ctx):
            if (ctx.rank == 0 and not self.state.get("grew")
                    and self.state["done"] >= 20_000):
                self.state["grew"] = True
                yield from ctx.mpi.spawn(2)
                return
            yield from MonteCarloPi.step(self, ctx)

    sf = StarfishCluster.build(nodes=4)
    handle = sf.submit(AppSpec(
        program=GrowingPi, nprocs=2,
        params={"shots": 100_000, "chunk": 1000},
        ft_policy=FaultPolicy.VIEW_NOTIFY))
    results = sf.run_to_completion(handle, timeout=600)
    assert len(handle._record().placement) == 4
    for pi in results.values():
        assert pi == pytest.approx(3.14159, abs=0.05)
