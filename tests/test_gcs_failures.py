"""Group communication under crashes, partitions, joins, and merges."""

import pytest

from repro.faults import CrashNode
from repro.gcs import GcsConfig, GroupMember

from tests.gcs_helpers import Harness, assert_common_prefix


def test_member_crash_triggers_new_view():
    h = Harness(nodes=4)
    h.boot_all()
    h.run(until=2.0)
    h.cluster.crash_node("n3")
    h.run(until=4.0)
    for nid in ("n0", "n1", "n2"):
        assert h.member_ids(nid) == ["n0", "n1", "n2"], nid
    # Survivors agree on the epoch.
    assert len({h.last_view(nid).epoch for nid in ("n0", "n1", "n2")}) == 1


def test_coordinator_crash_elects_new_coordinator():
    h = Harness(nodes=4)
    h.boot_all()
    h.run(until=2.0)
    coord = [gm for gm in h.members.values() if gm.is_coordinator][0]
    coord_node = coord.endpoint.node
    h.cluster.crash_node(coord_node)
    h.run(until=5.0)
    survivors = [nid for nid in h.members if nid != coord_node]
    for nid in survivors:
        assert h.member_ids(nid) == sorted(survivors), nid
    new_coords = [nid for nid in survivors if h.members[nid].is_coordinator]
    assert len(new_coords) == 1
    assert new_coords[0] != coord_node


def test_casting_resumes_after_member_crash():
    h = Harness(nodes=3)
    h.boot_all()
    h.run(until=2.0)
    h.cluster.crash_node("n2")
    h.run(until=4.0)
    h.members["n0"].cast("after-crash")
    h.run(until=5.0)
    assert "after-crash" in h.casts("n0")
    assert "after-crash" in h.casts("n1")


def test_cast_concurrent_with_crash_not_lost_for_survivors():
    # n1 casts a burst right as n2 dies; survivors must deliver all of
    # n1's messages exactly once, in FIFO order.
    h = Harness(nodes=3)
    h.boot_all()
    h.run(until=2.0)

    def burster():
        for i in range(10):
            h.members["n1"].cast(("burst", i))
            yield h.engine.timeout(0.001)

    h.engine.process(burster())
    h.cluster.faults.at(2.004, CrashNode(node="n2"))
    h.run(until=6.0)
    for nid in ("n0", "n1"):
        bursts = [p for p in h.casts(nid) if isinstance(p, tuple)]
        assert bursts == [("burst", i) for i in range(10)], nid
        assert h.members[nid].stats["duplicates"] == 0


def test_virtual_synchrony_same_messages_before_view_change():
    # All co-transitioning members deliver the same set in the old view:
    # compare the per-view delivery logs around a crash.
    h = Harness(nodes=4)
    h.boot_all()
    h.run(until=2.0)
    for i in range(6):
        h.members["n0"].cast(("pre", i))
    h.cluster.faults.at(2.02, CrashNode(node="n3"))
    h.run(until=5.0)
    for i in range(3):
        h.members["n1"].cast(("post", i))
    h.run(until=7.0)
    survivors = ("n0", "n1", "n2")
    seqs = [h.casts(nid) for nid in survivors]
    assert_common_prefix(seqs)
    for s in seqs:
        assert len(s) == 9  # nothing lost, nothing duplicated


def test_join_after_group_is_running():
    h = Harness(nodes=3)
    h.boot_all()
    h.run(until=2.0)
    # Add a brand-new node and member late.
    node = h.cluster.add_node("n9")
    gm = GroupMember(h.engine, node, config=h.cfg)
    h.members["n9"] = gm
    h.log["n9"] = []
    node.spawn(h._recorder("n9", gm))
    gm.start(contact=h.members["n0"].endpoint)
    h.run(until=4.0)
    for nid in h.members:
        assert h.member_ids(nid) == ["n0", "n1", "n2", "n9"], nid


def test_crashed_node_recovers_and_rejoins_with_new_incarnation():
    h = Harness(nodes=3)
    h.boot_all()
    h.run(until=2.0)
    old_ep = h.members["n2"].endpoint
    h.cluster.crash_node("n2")
    h.run(until=4.0)
    node = h.cluster.recover_node("n2")
    gm = GroupMember(h.engine, node, config=h.cfg)
    h.members["n2b"] = gm
    h.log["n2b"] = []
    node.spawn(h._recorder("n2b", gm))
    gm.start(contact=h.members["n0"].endpoint)
    h.run(until=7.0)
    assert h.member_ids("n0") == ["n0", "n1", "n2"]
    view = h.last_view("n0")
    new_ep = view.member_on("n2")
    assert new_ep is not None and new_ep != old_ep
    assert new_ep.inc != old_ep.inc


def test_graceful_leave_shrinks_view():
    h = Harness(nodes=3)
    h.boot_all()
    h.run(until=2.0)
    h.members["n2"].leave()
    h.run(until=4.0)
    for nid in ("n0", "n1"):
        assert h.member_ids(nid) == ["n0", "n1"], nid


def test_coordinator_graceful_leave():
    h = Harness(nodes=3)
    h.boot_all()
    h.run(until=2.0)
    coord_node = [nid for nid, gm in h.members.items()
                  if gm.is_coordinator][0]
    h.members[coord_node].leave()
    h.run(until=5.0)
    rest = sorted(nid for nid in h.members if nid != coord_node)
    for nid in rest:
        assert h.member_ids(nid) == rest, nid


def test_partition_forms_two_views():
    h = Harness(nodes=4)
    h.boot_all()
    h.run(until=2.0)
    h.cluster.ethernet.set_partition(["n0", "n1"], ["n2", "n3"])
    h.run(until=5.0)
    assert h.member_ids("n0") == ["n0", "n1"]
    assert h.member_ids("n1") == ["n0", "n1"]
    assert h.member_ids("n2") == ["n2", "n3"]
    assert h.member_ids("n3") == ["n2", "n3"]
    # Each side still works.
    h.members["n0"].cast("left-side")
    h.members["n2"].cast("right-side")
    h.run(until=6.0)
    assert "left-side" in h.casts("n1")
    assert "left-side" not in h.casts("n2")
    assert "right-side" in h.casts("n3")


def test_partition_heal_merges_views():
    h = Harness(nodes=4)
    h.boot_all()
    h.run(until=2.0)
    h.cluster.ethernet.set_partition(["n0", "n1"], ["n2", "n3"])
    h.run(until=5.0)
    h.cluster.ethernet.clear_partition()
    h.run(until=12.0)
    for nid in h.members:
        assert h.member_ids(nid) == ["n0", "n1", "n2", "n3"], nid
    coords = [nid for nid, gm in h.members.items() if gm.is_coordinator]
    assert len(coords) == 1
    # The merged group still orders casts consistently.
    h.members["n0"].cast("merged-0")
    h.members["n3"].cast("merged-3")
    h.run(until=14.0)
    tails = [h.casts(nid)[-2:] for nid in h.members]
    assert all(t == tails[0] and len(t) == 2 for t in tails)


def test_two_simultaneous_crashes():
    h = Harness(nodes=5)
    h.boot_all()
    h.run(until=2.0)
    h.cluster.crash_node("n1")
    h.cluster.crash_node("n3")
    h.run(until=6.0)
    for nid in ("n0", "n2", "n4"):
        assert h.member_ids(nid) == ["n0", "n2", "n4"], nid


def test_cascading_crashes_leave_singleton():
    h = Harness(nodes=3)
    h.boot_all()
    h.run(until=2.0)
    h.cluster.faults.at(2.5, CrashNode(node="n0"))
    h.cluster.faults.at(3.5, CrashNode(node="n1"))
    h.run(until=7.0)
    assert h.member_ids("n2") == ["n2"]
    assert h.members["n2"].is_coordinator
    # And it still "works" as a group of one.
    h.members["n2"].cast("alone")
    h.run(until=8.0)
    assert "alone" in h.casts("n2")


def test_no_gossip_config_keeps_partitions_separate():
    h = Harness(nodes=2, config=GcsConfig(gossip=False))
    h.boot_all()
    h.run(until=2.0)
    h.cluster.ethernet.set_partition(["n0"], ["n1"])
    h.run(until=4.0)
    h.cluster.ethernet.clear_partition()
    h.run(until=8.0)
    # Without gossip the two singleton views never merge.
    assert h.member_ids("n0") == ["n0"]
    assert h.member_ids("n1") == ["n1"]


def test_reincarnated_member_ignores_frames_for_its_predecessor():
    # Frames addressed to a dead incarnation (retransmits queued while the
    # node was down) must not reach the recovered member on the same node:
    # accepting them poisons the per-sender reliable streams — the old
    # stream's sequence numbers shadow the new one's, and fresh sends get
    # acked away as "duplicates" without ever being delivered.
    h = Harness(nodes=3)
    h.boot_all()
    h.run(until=2.0)
    old_ep = h.members["n2"].endpoint
    h.cluster.crash_node("n2")
    h.run(until=4.0)
    node = h.cluster.recover_node("n2")
    gm = GroupMember(h.engine, node, config=h.cfg)
    h.members["n2b"] = gm
    h.log["n2b"] = []
    node.spawn(h._recorder("n2b", gm))
    gm.start(contact=h.members["n0"].endpoint)
    h.run(until=7.0)
    new_ep = h.last_view("n0").member_on("n2")
    assert new_ep.inc != old_ep.inc

    h.members["n0"].send(old_ep, "for-the-dead")     # must vanish
    h.members["n0"].send(new_ep, "for-the-living")
    h.run(until=10.0)
    p2p = [ev.payload for ev in h.log["n2b"]
           if type(ev).__name__ == "P2pEvent"]
    assert "for-the-living" in p2p
    assert "for-the-dead" not in p2p
