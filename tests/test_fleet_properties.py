"""Hypothesis property: fleet admission is perturbation-invariant.

The tentpole determinism guarantee of the fleet scheduler: with the same
cluster seed, *any* interleaving of same-instant events the
``repro.check`` SchedulePerturbation harness explores (via
``ClusterSpec.perturb_seed``) produces a byte-identical admission order
and placement — the scheduler's ``(-priority, submit_time, tenant,
seq)`` queue order and least-loaded-plus-ring placement never depend on
event tie-breaks.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import ComputeSleep
from repro.cluster import ClusterSpec
from repro.core import AppSpec, FaultPolicy, StarfishCluster
from repro.fleet import FleetController, FleetOracle, TenantQuota

TENANTS = ("acme", "globex", "initech")


def _specs():
    """9 multi-tenant submissions, all queued at the same instant."""
    out = []
    for i in range(9):
        out.append(AppSpec(
            program=ComputeSleep, nprocs=1 + (i % 3),
            params={"steps": 2 + (i % 4), "step_time": 0.1},
            ft_policy=FaultPolicy.RESTART,
            tenant=TENANTS[i % len(TENANTS)],
            priority=(2 if i in (4, 7) else 0)))
    return out


def _admission_trace(perturb_seed):
    """Run the fleet to completion; return the byte-stable evidence."""
    sf = StarfishCluster.build(spec=ClusterSpec(
        nodes=6, seed=3, perturb_seed=perturb_seed))
    quotas = {t: TenantQuota(max_ranks=4, max_apps=2) for t in TENANTS}
    controller = FleetController(sf, quotas=quotas)
    for spec in _specs():
        controller.submit(spec)
    deadline = sf.engine.now + 60.0
    while controller.pending_work() and sf.engine.now < deadline:
        sf.engine.run(until=sf.engine.now + 0.5)
    controller.close()
    assert FleetOracle().check(controller.scheduler) == []
    lines = controller.scheduler.log_lines()
    placements = [(a.job_id, tuple(sorted(a.placement.items())))
                  for a in controller.scheduler.admissions]
    return "\n".join(lines), placements


BASELINE = {}


@settings(max_examples=8, deadline=None)
@given(pseed=st.integers(min_value=1, max_value=10**9))
def test_admission_order_and_placement_survive_perturbation(pseed):
    if "base" not in BASELINE:
        BASELINE["base"] = _admission_trace(None)
    base_log, base_placements = BASELINE["base"]
    log, placements = _admission_trace(pseed)
    assert log == base_log
    assert placements == base_placements


def test_admission_trace_is_replay_identical():
    assert _admission_trace(17) == _admission_trace(17)
