"""Cross-mode recovery matrix: every protocol x every store flavour.

One parametrized crash-recovery run over all entries of the
:data:`~repro.ckpt.protocols.PROTOCOLS` registry crossed with the three
store builds (legacy single-copy, k=2 replicated, memory/disk tiered),
asserting the defining recovery shape of each fault-tolerance mode:

* rollback protocols (coordinated and uncoordinated C/R) restart every
  rank — ``daemon.ranks_restarted == nprocs``;
* message-logging protocols restart exactly the crashed rank — ``== 1``;
* active replication restarts nothing — ``== 0`` (a surviving copy is
  promoted in place).

The workload needs no committed checkpoint for these shapes to hold
(rollback without one restarts from the initial state), so the crash
lands at a fixed simulated time and the whole matrix stays fast.
"""

import pytest

from repro.apps import ComputeSleep
from repro.ckpt.protocols import PROTOCOLS
from repro.cluster.spec import ClusterSpec
from repro.core.appspec import AppSpec, CheckpointConfig
from repro.core.policies import FaultPolicy
from repro.core.starfish import StarfishCluster

NPROCS = 3

#: protocol -> ranks a crash must restart (the mode's defining shape).
EXPECTED_RANKS_RESTARTED = {
    "stop-and-sync": NPROCS,
    "chandy-lamport": NPROCS,
    "uncoordinated": NPROCS,
    "diskless": NPROCS,
    "sender-logging": 1,
    "causal-logging": 1,
    "replication": 0,
}

STORES = {
    "legacy": ClusterSpec(nodes=5, seed=7),
    "replicated-k2": ClusterSpec(nodes=5, seed=7, replication_factor=2),
    "tiered": ClusterSpec(nodes=5, seed=7, store_tiers=("memory", "disk"),
                          replication_factor=2),
}


def test_matrix_covers_the_whole_registry():
    # A new protocol must declare its recovery shape here to ship.
    assert set(EXPECTED_RANKS_RESTARTED) == set(PROTOCOLS)


def _run_cell(protocol: str, spec: ClusterSpec):
    sf = StarfishCluster.build(spec=spec)
    app = AppSpec(
        program=ComputeSleep, nprocs=NPROCS,
        params={"steps": 16, "step_time": 0.25, "state_bytes": 4096},
        ft_policy=FaultPolicy.RESTART,
        checkpoint=CheckpointConfig(
            protocol=protocol, level="vm", interval=0.8,
            replicas=2 if protocol == "replication" else 1))
    handle = sf.submit(app)
    sf.engine.run(until=sf.engine.now + 1.2)
    sf.crash_node(handle._record().placement[1])
    results = sf.run_to_completion(handle, timeout=180.0)
    restarted = sf.engine.metrics.group_by("daemon.ranks_restarted", "app")
    return results, handle.restarts, restarted.get(handle.app_id, 0)


@pytest.mark.parametrize("store", sorted(STORES))
@pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
def test_recovery_shape(protocol, store):
    results, restarts, ranks_restarted = _run_cell(protocol, STORES[store])
    assert restarts >= 1
    assert ranks_restarted == EXPECTED_RANKS_RESTARTED[protocol]
    assert results == {r: 16 for r in range(NPROCS)}
