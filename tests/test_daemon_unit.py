"""Daemon-internals unit tests: registry, placement, state transfer, GC."""

import pytest

from repro.apps import ComputeSleep
from repro.ckpt import CheckpointRecord, CheckpointStore
from repro.cluster import arch_by_name
from repro.core import AppSpec, CheckpointConfig, FaultPolicy, StarfishCluster
from repro.daemon import AppRecord, AppStatus, Registry
from repro.errors import DaemonError, PlacementError, UnknownApplication


def make_record(app_id="a", **kw):
    defaults = dict(owner="u", nprocs=2, program=ComputeSleep, params={},
                    ft_policy="kill", ckpt_protocol=None, ckpt_level="vm",
                    ckpt_interval=None, transport="bip-myrinet",
                    polling=True, placement={0: "n0", 1: "n1"})
    defaults.update(kw)
    return AppRecord(app_id=app_id, **defaults)


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

def test_registry_crud():
    reg = Registry()
    rec = make_record()
    reg.add(rec)
    assert reg.get("a") is rec
    assert "a" in reg and len(reg) == 1
    assert reg.maybe("nope") is None
    with pytest.raises(UnknownApplication):
        reg.get("nope")
    reg.remove("a")
    assert "a" not in reg


def test_record_helpers():
    rec = make_record(placement={0: "n0", 1: "n1", 2: "n0"})
    assert rec.ranks_on("n0") == [0, 2]
    assert rec.nodes() == ["n0", "n1"]
    assert not rec.finished
    rec.status = AppStatus.DONE
    assert rec.finished


def test_registry_active_filters_finished():
    reg = Registry()
    reg.add(make_record("a"))
    done = make_record("b")
    done.status = AppStatus.KILLED
    reg.add(done)
    assert [r.app_id for r in reg.active()] == ["a"]
    assert [r.app_id for r in reg.all()] == ["a", "b"]


def test_record_blob_roundtrip():
    from repro.daemon.daemon import StarfishDaemon
    rec = make_record(ckpt_protocol="stop-and-sync", ckpt_interval=2.0)
    rec.results = {0: 13}
    rec.done_ranks = [0]
    rec.restarts = 3
    back = StarfishDaemon._record_from_blob(StarfishDaemon._record_blob(rec))
    assert back.app_id == rec.app_id
    assert back.placement == rec.placement
    assert back.ckpt_protocol == "stop-and-sync"
    assert back.results == {0: 13}
    assert back.restarts == 3
    assert back.status is rec.status


# ---------------------------------------------------------------------------
# placement
# ---------------------------------------------------------------------------

def test_pick_nodes_prefers_least_loaded():
    sf = StarfishCluster.build(nodes=3)
    daemon = sf.any_daemon()
    sf.submit(AppSpec(program=ComputeSleep, nprocs=2,
                      params={"steps": 1000, "step_time": 0.05},
                      placement={0: "n0", 1: "n1"}))
    sf.engine.run(until=sf.engine.now + 0.5)
    assert daemon._pick_nodes(1) == ["n2"]
    # Round-robin when demand exceeds nodes.
    picks = daemon._pick_nodes(5)
    assert len(picks) == 5 and set(picks) == {"n0", "n1", "n2"}


def test_pick_nodes_representation_filter():
    linux = arch_by_name("Intel P-II 350 MHz, i686")
    sun = arch_by_name("Sun Ultra Enterprise 3000")
    sf = StarfishCluster.build(nodes=3, archs=[linux, sun, linux])
    daemon = sf.any_daemon()
    picks = daemon._pick_nodes(4, require_repr=sun)
    assert set(picks) == {"n1"}
    with pytest.raises(PlacementError):
        daemon._pick_nodes(1, require_repr=arch_by_name(
            "Dual Alpha DS20 500 MHz"))


def test_submit_rejects_duplicates_and_bad_nprocs():
    sf = StarfishCluster.build(nodes=2)
    daemon = sf.any_daemon()
    daemon.submit("x", ComputeSleep, 1)
    with pytest.raises(DaemonError):
        daemon.submit("x", ComputeSleep, 1)
    with pytest.raises(DaemonError):
        daemon.submit("y", ComputeSleep, 0)


# ---------------------------------------------------------------------------
# state transfer to a daemon joining later
# ---------------------------------------------------------------------------

def test_new_daemon_absorbs_registry_and_config():
    sf = StarfishCluster.build(nodes=2)
    handle = sf.submit(AppSpec(program=ComputeSleep, nprocs=1,
                               params={"steps": 1000, "step_time": 0.05}))
    sf.any_daemon().gm.cast(("cfg-set", "quantum", "7ms"))
    sf.engine.run(until=sf.engine.now + 1.0)
    late = sf.add_node("n9")
    sf.settle()
    assert late.registry.maybe(handle.app_id) is not None
    assert late.config.get("quantum") == "7ms"


# ---------------------------------------------------------------------------
# checkpoint garbage collection
# ---------------------------------------------------------------------------

def test_gc_committed_keeps_last_k():
    store = CheckpointStore(None)
    for v in range(1, 6):
        for rank in range(2):
            store._records[("a", rank, v)] = CheckpointRecord(
                app_id="a", rank=rank, version=v, level="vm", nbytes=1,
                image=b"", arch_name="x", taken_at=0.0)
        store.commit("a", v)
    removed = store.gc_committed("a", keep=2)
    assert removed == 6              # versions 1..3 x 2 ranks
    assert store.committed_versions("a") == [4, 5]
    assert store.versions_of("a", 0) == [4, 5]
    # Idempotent.
    assert store.gc_committed("a", keep=2) == 0


def test_gc_noop_cases():
    store = CheckpointStore(None)
    assert store.gc_committed("ghost") == 0
    store.commit("a", 1)
    assert store.gc_committed("a", keep=1) == 0   # only one committed
    assert store.gc_committed("a", keep=0) == 0   # invalid keep


def test_periodic_checkpoints_get_gced_live():
    sf = StarfishCluster.build(nodes=2)
    handle = sf.submit(AppSpec(
        program=ComputeSleep, nprocs=2,
        params={"steps": 200, "step_time": 0.02},
        ft_policy=FaultPolicy.RESTART,
        checkpoint=CheckpointConfig(protocol="stop-and-sync", level="vm",
                                    interval=0.4)))
    sf.engine.run(until=sf.engine.now + 3.0)
    committed = sf.store.committed_versions(handle.app_id)
    assert len(committed) == 2           # keep=2 enforced by the protocol
    # And recovery still works from what is left.
    sf.crash_node(handle._record().placement[1])
    results = sf.run_to_completion(handle, timeout=300)
    assert results == {0: 200, 1: 200}


def test_daemon_log_records_lifecycle():
    sf = StarfishCluster.build(nodes=2)
    handle = sf.submit(AppSpec(program=ComputeSleep, nprocs=1,
                               params={"steps": 2, "step_time": 0.01}))
    sf.run_to_completion(handle)
    lines = [msg for _t, msg in sf.any_daemon().log]
    assert any("submit" in line for line in lines)
    assert any("done" in line for line in lines)
