"""Diskless (fast-network buddy) checkpointing — the §7 future-work
protocol."""

import pytest

from repro.apps import ComputeSleep, Jacobi1D
from repro.ckpt.protocols import DisklessProtocol, make_protocol
from repro.core import AppSpec, CheckpointConfig, FaultPolicy, StarfishCluster


def submit_diskless(sf, nprocs=3, steps=80, state_bytes=2_000_000,
                    interval=0.5):
    return sf.submit(AppSpec(
        program=ComputeSleep, nprocs=nprocs,
        params={"steps": steps, "step_time": 0.05,
                "state_bytes": state_bytes},
        ft_policy=FaultPolicy.RESTART,
        checkpoint=CheckpointConfig(protocol="diskless", level="vm",
                                    interval=interval),
        placement={r: f"n{r}" for r in range(nprocs)}))


def test_factory_knows_diskless():
    assert isinstance(make_protocol("diskless"), DisklessProtocol)


def test_records_live_in_buddy_memory_not_disk():
    sf = StarfishCluster.build(nodes=3)
    handle = submit_diskless(sf)
    sf.engine.run(until=sf.engine.now + 1.3)
    version = sf.store.latest_committed(handle.app_id)
    assert version is not None
    disk_bytes = sum(n.disk.bytes_written for n in sf.cluster.nodes.values())
    assert disk_bytes == 0                       # no disk involved
    for rank in range(3):
        rec = sf.store.peek(handle.app_id, rank, version)
        assert rec.in_memory
        assert len(rec.holder_nodes) == 2        # double mirroring
        assert f"n{rank}" not in rec.holder_nodes  # both copies off-node


def test_rotating_buddies_across_versions():
    # With 4 ranks the two mirror targets rotate with the version, so
    # consecutive lines are not held by the same pair of nodes.
    sf = StarfishCluster.build(nodes=4)
    handle = submit_diskless(sf, nprocs=4, interval=0.4)
    sf.engine.run(until=sf.engine.now + 1.6)
    versions = sf.store.committed_versions(handle.app_id)
    assert len(versions) >= 2
    v1, v2 = versions[-2], versions[-1]
    h1 = set(sf.store.peek(handle.app_id, 0, v1).holder_nodes)
    h2 = set(sf.store.peek(handle.app_id, 0, v2).holder_nodes)
    assert h1 != h2                              # rotation


def test_diskless_checkpoint_much_faster_than_disk():
    def wave_duration(protocol):
        sf = StarfishCluster.build(nodes=2)
        handle = sf.submit(AppSpec(
            program=ComputeSleep, nprocs=2,
            params={"steps": 10**6, "step_time": 0.01,
                    "state_bytes": 8_000_000},
            ft_policy=FaultPolicy.RESTART,
            checkpoint=CheckpointConfig(protocol=protocol, level="native")))
        sf.engine.run(until=sf.engine.now + 1.0)
        proto = None
        for d in sf.live_daemons():
            for (aid, rank), h in d.handles.items():
                if aid == handle.app_id and rank == 0:
                    proto = h.protocol
        ev = proto.request_checkpoint()
        t0 = sf.engine.now
        sf.engine.run(until=ev)
        return sf.engine.now - t0

    disk = wave_duration("stop-and-sync")
    diskless = wave_duration("diskless")
    assert diskless < disk / 3


def test_crash_recovers_from_surviving_line():
    sf = StarfishCluster.build(nodes=3)
    handle = submit_diskless(sf, steps=60)
    sf.engine.run(until=sf.engine.now + 1.8)
    assert len(sf.store.committed_versions(handle.app_id)) >= 2
    victim = handle._record().placement[2]
    sf.crash_node(victim)
    results = sf.run_to_completion(handle, timeout=600)
    assert results == {0: 60, 1: 60, 2: 60}
    assert handle.restarts == 1


def test_crash_invalidates_held_copies_but_mirrors_survive():
    sf = StarfishCluster.build(nodes=3)
    handle = submit_diskless(sf)
    sf.engine.run(until=sf.engine.now + 1.3)
    version = sf.store.latest_committed(handle.app_id)
    held = [r for r in range(3)
            if "n2" in sf.store.peek(handle.app_id, r, version).holder_nodes]
    assert held
    sf.cluster.crash_node("n2")
    # The mirror on the surviving node keeps every record alive...
    for rank in held:
        rec = sf.store.peek(handle.app_id, rank, version)
        assert "n2" not in rec.holder_nodes
        assert rec.holder_nodes                   # at least one copy left
    # ...so the newest line is still fully restorable after one crash.
    assert sf.store.latest_restorable(handle.app_id, range(3)) == version


def test_latest_restorable_falls_back_past_wiped_line():
    # Pure-store scenario: version 2 of rank 1 lost all copies (e.g. two
    # crashes); recovery falls back to version 1, which is intact.
    from repro.ckpt import CheckpointRecord, CheckpointStore
    store = CheckpointStore(None)
    for version in (1, 2):
        for rank in range(2):
            rec = CheckpointRecord(app_id="a", rank=rank, version=version,
                                   level="vm", nbytes=10, image=b"",
                                   arch_name="x", taken_at=0.0)
            store.write_memory(rec, holder_node=f"h{version}{rank}a")
            store.write_memory(rec, holder_node=f"h{version}{rank}b")
        store.commit("a", version)
    assert store.latest_restorable("a", range(2)) == 2
    store.drop_volatile("h21a")
    assert store.latest_restorable("a", range(2)) == 2   # mirror survives
    store.drop_volatile("h21b")                           # both copies gone
    assert store.latest_restorable("a", range(2)) == 1
    store.drop_volatile("h10a")
    store.drop_volatile("h10b")
    assert store.latest_restorable("a", range(2)) is None


def test_diskless_works_for_tightly_coupled_apps():
    sf = StarfishCluster.build(nodes=4)
    handle = sf.submit(AppSpec(
        program=Jacobi1D, nprocs=4,
        params={"n": 256, "iterations": 500, "iters_per_step": 10,
                "compute_ns_per_cell": 200_000},
        ft_policy=FaultPolicy.RESTART,
        checkpoint=CheckpointConfig(protocol="diskless", level="vm",
                                    interval=1.0)))
    sf.engine.run(until=sf.engine.now + 3.0)
    sf.crash_node(handle._record().placement[3])
    results = sf.run_to_completion(handle, timeout=600)
    assert results[0][0] == 500
    assert handle.restarts == 1


def test_singleton_app_keeps_local_memory_copy():
    sf = StarfishCluster.build(nodes=1)
    handle = sf.submit(AppSpec(
        program=ComputeSleep, nprocs=1,
        params={"steps": 40, "step_time": 0.02},
        ft_policy=FaultPolicy.RESTART,
        checkpoint=CheckpointConfig(protocol="diskless", level="vm",
                                    interval=0.3)))
    sf.engine.run(until=sf.engine.now + 1.0)
    version = sf.store.latest_committed(handle.app_id)
    rec = sf.store.peek(handle.app_id, 0, version)
    assert rec.in_memory and rec.holder_node == "n0"
    sf.run_to_completion(handle, timeout=120)
