"""TieredStore: L1/L2/L3 failover, delta chains, the StoreBackend API."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckpt.storage import (TIER_DISK, TIER_FABRIC, TIER_MEMORY,
                                TIER_ORDER, CheckpointRecord, CheckpointStore)
from repro.cluster import Cluster, ClusterSpec
from repro.cluster.spec import STORE_TIERS, TIER_POLICIES
from repro.errors import NoCheckpoint
from repro.store import (Delta, ReplicatedStore, StoreBackend, TieredStore,
                         delta_apply, delta_encode, squash)
from repro.store.tiers import PROMOTIONS, WRITE_BACK, normalize_tiers


def _rec(app_id, rank, version, image=b"x" * 2048, taken_at=0.0):
    return CheckpointRecord(app_id=app_id, rank=rank, version=version,
                            level="vm", nbytes=max(len(image), 1),
                            image=image, arch_name="test", taken_at=taken_at)


def _build(nodes=5, seed=0, tiers=TIER_ORDER, k=2, delta_depth=0,
           promotion="write-through"):
    cluster = Cluster.build(spec=ClusterSpec(nodes=nodes, seed=seed))
    store = TieredStore(cluster.engine, cluster, tiers=tiers, k=k,
                        delta_depth=delta_depth, promotion=promotion)
    cluster.watchers.append(store.on_membership)
    return cluster, store


def _write(cluster, store, rec, node="n0"):
    cluster.engine.process(store.write(cluster.nodes[node], rec))
    cluster.engine.run()


def _read(cluster, store, app_id, rank, version, from_node="n4"):
    out = {}

    def runner():
        try:
            out["record"] = yield from store.read(
                cluster.nodes[from_node], app_id, rank, version)
        except NoCheckpoint as exc:
            out["error"] = exc
    cluster.engine.process(runner())
    cluster.engine.run()
    return out


# ---------------------------------------------------------------------------
# tier-failover matrix: shrink-to-fit recovery, fastest tier first
# ---------------------------------------------------------------------------

def test_write_through_populates_every_tier():
    cluster, store = _build(nodes=6, k=2)
    _write(cluster, store, _rec("app", 0, 1))
    rec = store.peek("app", 0, 1)
    by_tier = store.available_by_tier(rec)
    assert len(by_tier[TIER_MEMORY]) == 2       # k full partner copies
    assert "n0" not in by_tier[TIER_MEMORY]     # writer's RAM doesn't count
    assert by_tier[TIER_DISK] == ["n0"]         # local disk
    assert len(by_tier[TIER_FABRIC]) == 1       # k-1 remote disks
    assert "n0" not in by_tier[TIER_FABRIC]


def test_failover_l1_partner_crash_restores_from_l2_disk():
    cluster, store = _build(nodes=6, k=2)
    _write(cluster, store, _rec("app", 0, 1))
    store.commit("app", 1)
    rec = store.peek("app", 0, 1)
    for holder in list(rec.tier_holders(TIER_MEMORY)):
        cluster.crash_node(holder)
    by_tier = store.available_by_tier(rec)
    assert by_tier.get(TIER_MEMORY, []) == []
    assert by_tier[TIER_DISK] == ["n0"]         # L2 takes over
    out = _read(cluster, store, "app", 0, 1)
    assert out["record"].image == b"x" * 2048
    assert store.record_available("app", 0, 1)


def test_failover_node_removal_restores_from_l3_fabric():
    cluster, store = _build(nodes=6, k=2)
    _write(cluster, store, _rec("app", 0, 1))
    store.commit("app", 1)
    rec = store.peek("app", 0, 1)
    # Reboot every memory partner: a crash wipes RAM (drop_volatile) but
    # the machine's disk survives its recovery — so the fabric copy one
    # partner also holds on disk comes back while all L1 copies stay lost.
    for holder in list(rec.tier_holders(TIER_MEMORY)):
        cluster.crash_node(holder)
        cluster.recover_node(holder)
    cluster.remove_node("n0")                   # writer + its disk, for good
    by_tier = store.available_by_tier(rec)
    assert by_tier.get(TIER_MEMORY, []) == []
    assert by_tier.get(TIER_DISK, []) == []
    fabric = by_tier[TIER_FABRIC]
    assert fabric and "n0" not in fabric
    out = _read(cluster, store, "app", 0, 1,
                from_node=next(n for n in sorted(cluster.nodes)
                               if cluster.nodes[n].is_up))
    assert out["record"].image == b"x" * 2048


def test_failover_all_tiers_gone_raises_nocheckpoint():
    cluster, store = _build(nodes=6, k=2)
    _write(cluster, store, _rec("app", 0, 1))
    store.commit("app", 1)
    rec = store.peek("app", 0, 1)
    for holder in set(rec.all_holders()):
        cluster.crash_node(holder)
    assert not store.record_available("app", 0, 1)
    assert store.latest_restorable("app", [0]) is None
    survivor = next(n for n in sorted(cluster.nodes)
                    if cluster.nodes[n].is_up)
    out = _read(cluster, store, "app", 0, 1, from_node=survivor)
    assert isinstance(out.get("error"), NoCheckpoint)


# ---------------------------------------------------------------------------
# delta chains: property + store round-trip
# ---------------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(st.binary(min_size=0, max_size=20_000),
       st.lists(st.binary(min_size=0, max_size=20_000),
                min_size=1, max_size=5))
def test_delta_squash_matches_full_dump(base, successors):
    deltas = []
    prev = base
    for new in successors:
        delta = delta_encode(prev, new)
        assert isinstance(delta, Delta)
        assert delta_apply(prev, delta) == new
        deltas.append(delta)
        prev = new
    assert squash(base, deltas) == successors[-1]


@settings(max_examples=25, deadline=None)
@given(st.lists(st.binary(min_size=1, max_size=8192),
                min_size=2, max_size=6),
       st.integers(min_value=1, max_value=4))
def test_store_delta_chain_roundtrips_every_version(images, depth):
    cluster, store = _build(nodes=5, k=2, delta_depth=depth)
    for v, image in enumerate(images, start=1):
        _write(cluster, store, _rec("app", 0, v, image=image,
                                    taken_at=float(v)))
        store.commit("app", v)
    assert any(store.peek("app", 0, v).is_delta
               for v in range(2, len(images) + 1)) or depth == 1 \
        or all(len(img) < 1 for img in images)
    for v, image in enumerate(images, start=1):
        out = _read(cluster, store, "app", 0, v)
        got = out["record"]
        assert got.image == image, v            # byte-identical reconstruction
        assert not got.is_delta                 # reader sees a full record


def test_chain_squashes_at_configured_depth():
    cluster, store = _build(nodes=5, k=2, delta_depth=2)
    for v in range(1, 7):
        _write(cluster, store, _rec("app", 0, v, image=bytes([v]) * 4096,
                                    taken_at=float(v)))
    kinds = [store.peek("app", 0, v).is_delta for v in range(1, 7)]
    # base, delta, delta, base (chain hit depth 2), delta, delta
    assert kinds == [False, True, True, False, True, True]


def test_gc_keeps_bases_needed_by_live_delta_chains():
    cluster, store = _build(nodes=5, k=2, delta_depth=8)
    for v in range(1, 5):                       # v1 base; v2..v4 deltas
        _write(cluster, store, _rec("app", 0, v, image=bytes([v]) * 4096,
                                    taken_at=float(v)))
        store.commit("app", v)
    assert store.peek("app", 0, 4).is_delta
    store.gc_committed("app", keep=1)
    # v4's whole chain must survive GC even though only v4 is retained
    for v in range(1, 5):
        assert store.has("app", 0, v), v
    out = _read(cluster, store, "app", 0, 4)
    assert out["record"].image == bytes([4]) * 4096


# ---------------------------------------------------------------------------
# write-back promotion
# ---------------------------------------------------------------------------

def test_write_back_defers_slow_tiers_then_flushes():
    cluster, store = _build(nodes=6, k=2, promotion=WRITE_BACK)
    rec = _rec("app", 0, 1)
    proc = cluster.engine.process(store.write(cluster.nodes["n0"], rec))
    cluster.engine.run(until=proc)
    by_tier = store.available_by_tier(rec)
    assert len(by_tier[TIER_MEMORY]) == 2       # inline: fastest tier only
    assert by_tier.get(TIER_DISK, []) == []
    assert by_tier.get(TIER_FABRIC, []) == []
    cluster.engine.run()                        # background flusher drains
    by_tier = store.available_by_tier(rec)
    assert by_tier[TIER_DISK] == ["n0"]
    assert len(by_tier[TIER_FABRIC]) == 1


# ---------------------------------------------------------------------------
# holder_node liveness (regression: used to return a DOWN holder)
# ---------------------------------------------------------------------------

def test_holder_node_skips_down_holders():
    cluster, store = _build(nodes=5, k=3, tiers=(TIER_DISK, TIER_FABRIC))
    _write(cluster, store, _rec("app", 0, 1))
    rec = store.peek("app", 0, 1)
    assert rec.holder_node == "n0"
    cluster.crash_node("n0")
    assert rec.holder_node != "n0"              # never hand out a DOWN node
    assert rec.holder_node is None              # home tier (disk) was n0 only
    fallback = store.available_holders(rec)
    assert fallback and "n0" not in fallback    # fabric copies still served


def test_holder_node_none_when_every_holder_is_down():
    cluster = Cluster.build(spec=ClusterSpec(nodes=3, seed=0))
    store = CheckpointStore(cluster.engine)
    store.node_liveness = lambda nid: cluster.nodes[nid].is_up
    rec = _rec("app", 0, 1)
    store.write_tier(rec, TIER_DISK, holder_node="n1")
    assert rec.holder_node == "n1"
    cluster.nodes["n1"].crash()
    assert rec.holder_node is None


# ---------------------------------------------------------------------------
# StoreBackend protocol conformance + config plumbing
# ---------------------------------------------------------------------------

def test_every_store_satisfies_storebackend():
    cluster = Cluster.build(spec=ClusterSpec(nodes=3, seed=0))
    stores = (CheckpointStore(cluster.engine),
              ReplicatedStore(cluster.engine, cluster, k=2),
              TieredStore(cluster.engine, cluster))
    for store in stores:
        assert isinstance(store, StoreBackend), type(store).__name__


def test_normalize_tiers_orders_and_validates():
    from repro.errors import CheckpointError
    assert normalize_tiers(("fabric", "memory")) == ("memory", "fabric")
    with pytest.raises(CheckpointError):
        normalize_tiers(())
    with pytest.raises(CheckpointError):
        normalize_tiers(("memory", "memory"))
    with pytest.raises(CheckpointError):
        normalize_tiers(("tape",))


def test_spec_constants_stay_in_sync_with_store():
    assert STORE_TIERS == TIER_ORDER
    assert TIER_POLICIES == tuple(PROMOTIONS)


def test_cluster_spec_rejects_bad_tier_configs():
    with pytest.raises(ValueError):
        ClusterSpec(store_tiers=("tape",))
    with pytest.raises(ValueError):
        ClusterSpec(store_tiers=("disk", "disk"))
    with pytest.raises(ValueError):
        ClusterSpec(delta_depth=2)              # deltas need store_tiers
    with pytest.raises(ValueError):
        ClusterSpec(tier_policy="write-back")   # ditto for write-back
    spec = ClusterSpec(store_tiers=["memory", "disk"], delta_depth=2,
                       tier_policy="write-back")
    assert spec.store_tiers == ("memory", "disk")


# ---------------------------------------------------------------------------
# CLI: store subcommands + the --what deprecation path
# ---------------------------------------------------------------------------

def test_cli_store_tiers_subcommand(capsys):
    from repro.cli import main
    rc = main(["store", "--nodes", "5", "--k", "2", "--seed", "3",
               "--tiers", "memory,disk,fabric", "--delta-depth", "3",
               "tiers"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "tier map" in out and "memory+disk+fabric" in out
    assert "memory=" in out and "disk=" in out and "fabric=" in out
    assert "placement policy" not in out        # subcommand = that section


def test_cli_store_subcommands_filter_by_rank_and_version(capsys):
    from repro.cli import main
    rc = main(["store", "--nodes", "5", "--k", "2", "--seed", "3",
               "replica-map", "--rank", "0"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "rank=0" in out and "rank=1" not in out
    rc = main(["store", "--nodes", "5", "--k", "2", "--seed", "3",
               "placement"])
    assert rc == 0
    assert "placement policy=ring k=2" in capsys.readouterr().out
    rc = main(["store", "--nodes", "5", "--k", "2", "--seed", "3",
               "repair"])
    assert rc == 0
    assert "repair:" in capsys.readouterr().out


def test_cli_store_legacy_what_flag_removed(capsys):
    # --what had its one-release deprecation window; it now fails fast.
    from repro.cli import main
    rc = main(["store", "--nodes", "4", "--k", "2", "--seed", "3",
               "--what", "placement"])
    assert rc == 2
    assert "--what has been removed" in capsys.readouterr().err


def test_cli_store_default_sections_unchanged(capsys):
    from repro.cli import main
    rc = main(["store", "--nodes", "4", "--k", "2", "--seed", "3"])
    assert rc == 0
    out = capsys.readouterr().out
    for fragment in ("placement policy=ring k=2", "replica map",
                     "holders=", "repair:"):
        assert fragment in out
    assert "tier map" not in out                # legacy build: no tiers


def test_starfish_builds_tiered_store_from_spec():
    from repro.core import StarfishCluster
    sf = StarfishCluster.build(spec=ClusterSpec(
        nodes=4, seed=1, store_tiers=("memory", "disk", "fabric"),
        replication_factor=2, delta_depth=3))
    assert isinstance(sf.store, TieredStore)
    assert sf.store.delta_depth == 3
    assert sf.store.repair is not None          # k=2 keeps repair on
