"""Unit tests of the application-process runtime's scheduler mechanics."""

import pytest

from repro.core import AppSpec, CheckpointConfig, FaultPolicy, StarfishCluster
from repro.core.program import StarfishProgram


class Stepper(StarfishProgram):
    """Counts steps; optionally records upcalls."""

    def setup(self, ctx):
        self.state.update(i=0, coords=[], views=0)

    def step(self, ctx):
        yield from ctx.sleep(float(ctx.params.get("step_time", 0.01)))
        self.state["i"] += 1

    def is_done(self, ctx):
        return self.state["i"] >= int(ctx.params.get("steps", 5))

    def finalize(self, ctx):
        return self.state["i"]

    def on_view_change(self, ctx, info):
        self.state["views"] += 1

    def on_coordination(self, ctx, source, payload):
        self.state["coords"].append((source, payload))


def launch(sf, **kw):
    spec = AppSpec(program=kw.pop("program", Stepper),
                   nprocs=kw.pop("nprocs", 2),
                   params=kw.pop("params", {"steps": 50,
                                            "step_time": 0.02}),
                   **kw)
    handle = sf.submit(spec)
    sf.engine.run(until=sf.engine.now + 0.5)
    procs = {}
    for daemon in sf.live_daemons():
        for (aid, rank), h in daemon.handles.items():
            if aid == handle.app_id:
                procs[rank] = h
    return handle, procs


def test_steps_completed_advances():
    sf = StarfishCluster.build(nodes=2)
    handle, procs = launch(sf)
    before = procs[0].steps_completed
    sf.engine.run(until=sf.engine.now + 0.5)
    assert procs[0].steps_completed > before


def test_pause_with_future_target_waits_for_boundary():
    sf = StarfishCluster.build(nodes=2)
    handle, procs = launch(sf)
    rt = procs[0]
    target = rt.steps_completed + 3
    ev = rt.request_pause(target)
    assert ev is not None               # not eligible yet
    sf.engine.run(until=sf.engine.now + 0.2)
    assert ev.triggered                 # acked at the target boundary
    assert rt.steps_completed == target
    frozen_at = rt.steps_completed
    sf.engine.run(until=sf.engine.now + 0.5)
    assert rt.steps_completed == frozen_at   # actually frozen
    rt.resume()
    sf.engine.run(until=sf.engine.now + 0.2)
    assert rt.steps_completed > frozen_at


def test_pause_accumulates_frozen_time():
    sf = StarfishCluster.build(nodes=2)
    handle, procs = launch(sf)
    rt = procs[0]
    ev = rt.request_pause(rt.steps_completed + 1)
    sf.engine.run(until=sf.engine.now + 0.1)
    assert ev.triggered
    sf.engine.run(until=sf.engine.now + 0.4)
    rt.resume()
    sf.engine.run(until=sf.engine.now + 0.05)
    assert rt.paused_accum > 0.35


def test_two_pausers_resume_only_when_both_release():
    sf = StarfishCluster.build(nodes=2)
    handle, procs = launch(sf)
    rt = procs[0]
    rt.request_pause(rt.steps_completed + 1)
    rt.request_pause(None)
    sf.engine.run(until=sf.engine.now + 0.1)
    frozen = rt.steps_completed
    rt.resume()
    sf.engine.run(until=sf.engine.now + 0.3)
    assert rt.steps_completed == frozen       # still held by the second
    rt.resume()
    sf.engine.run(until=sf.engine.now + 0.3)
    assert rt.steps_completed > frozen


def test_suspend_resume_roundtrip():
    sf = StarfishCluster.build(nodes=2)
    handle, procs = launch(sf)
    procs[0].suspend()
    procs[1].suspend()
    sf.engine.run(until=sf.engine.now + 0.2)
    frozen = (procs[0].steps_completed, procs[1].steps_completed)
    sf.engine.run(until=sf.engine.now + 1.0)
    assert (procs[0].steps_completed, procs[1].steps_completed) == frozen
    procs[0].resume()
    procs[1].resume()
    results = sf.run_to_completion(handle)
    assert results == {0: 50, 1: 50}


def test_coordination_upcall_delivery():
    sf = StarfishCluster.build(nodes=2)
    handle, procs = launch(sf)
    procs[1].ctx.coordinate({"hello": 1})
    sf.engine.run(until=sf.engine.now + 0.5)
    # Both ranks (including the sender) receive the cast, tagged with the
    # sender's world rank.
    for rank in (0, 1):
        coords = procs[rank].program.state["coords"]
        assert (1, {"hello": 1}) in coords


def test_kill_is_idempotent_and_final():
    sf = StarfishCluster.build(nodes=2)
    handle, procs = launch(sf)
    procs[0].kill("test")
    procs[0].kill("again")
    assert procs[0].done.value == ("killed", "test")


def test_aborted_steps_counted_on_view_change():
    sf = StarfishCluster.build(nodes=3)
    # Long steps: the view change is (almost) guaranteed to land mid-step.
    handle, procs = launch(sf, nprocs=3,
                           params={"steps": 30, "step_time": 0.8},
                           ft_policy=FaultPolicy.VIEW_NOTIFY)
    victim = handle._record().placement[2]
    sf.crash_node(victim)
    sf.engine.run(until=sf.engine.now + 4.0)
    # Survivors saw the view (program upcall ran) and aborted a step.
    assert procs[0].program.state["views"] >= 1
    assert procs[0].stats["views"] >= 1
    assert procs[0].stats["aborted_steps"] >= 1
    sf.run_to_completion(handle, timeout=120)


def test_periodic_ticker_only_on_lowest_rank():
    sf = StarfishCluster.build(nodes=2)
    handle, procs = launch(
        sf, params={"steps": 100, "step_time": 0.02},
        ft_policy=FaultPolicy.RESTART,
        checkpoint=CheckpointConfig(protocol="stop-and-sync", level="vm",
                                    interval=0.4))
    assert len(procs[0]._tickers) == 1
    assert len(procs[1]._tickers) == 0
    sf.engine.run(until=sf.engine.now + 1.5)
    assert sf.store.latest_committed(handle.app_id) is not None


def test_restart_flag_visible_to_program():
    class Observer(Stepper):
        def finalize(self, ctx):
            return (self.state["i"], ctx.restarted)

    sf = StarfishCluster.build(nodes=2)
    handle, procs = launch(
        sf, program=Observer, params={"steps": 60, "step_time": 0.05},
        ft_policy=FaultPolicy.RESTART,
        checkpoint=CheckpointConfig(protocol="stop-and-sync", level="vm",
                                    interval=0.5))
    sf.engine.run(until=sf.engine.now + 1.2)
    sf.crash_node(handle._record().placement[1])
    results = sf.run_to_completion(handle, timeout=300)
    assert results[0] == (60, True)
    assert results[1] == (60, True)
