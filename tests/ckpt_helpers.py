"""Test harness for the C/R protocols without the full Starfish stack.

Emulates the runtime side of :class:`~repro.ckpt.protocols.base.CrContext`:
C/R casts are relayed with lightweight-group semantics (total order, one
relay hop of latency) and "the application" is a generator per rank whose
safe points are cooperative (`harness.safe_point(rank)` inside app code).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.calibration import LOCAL_TCP_HOP
from repro.ckpt import CheckpointStore, make_checkpointer
from repro.ckpt.protocols import make_protocol
from repro.ckpt.protocols.base import CrContext
from repro.cluster import Cluster
from repro.mpi import MpiApi, MpiEndpoint
from repro.sim.events import Event


class FakeContext(CrContext):
    def __init__(self, harness, rank):
        self.h = harness
        self.engine = harness.cluster.engine
        self.app_id = "testapp"
        self.rank = rank
        self.node = harness.cluster.node(f"n{rank}")
        self.arch = self.node.arch
        self.endpoint = harness.apis[rank].endpoint
        self.checkpointer = make_checkpointer(harness.level)
        self.store = harness.store
        self.paused = False
        self._pause_waiters: List[Event] = []
        self.committed: List[int] = []

    def peers(self):
        return list(range(len(self.h.apis)))

    def cast(self, payload):
        self.h.relay(payload, self.rank)

    def pause(self, target_step=None):
        # The fake app polls `paused` at its safe points; consider the app
        # quiesced one safe-point delay later (target ignored: the fake
        # app has no step counter).
        self.paused = True
        yield self.engine.timeout(self.h.safe_point_delay)

    def resume(self):
        self.paused = False

    def snapshot_state(self):
        return dict(self.h.app_state[self.rank])

    def notify_committed(self, version):
        self.committed.append(version)


class CrHarness:
    """nranks MPI endpoints + one protocol module per rank."""

    def __init__(self, nranks=4, protocol="stop-and-sync", level="native",
                 seed=0, safe_point_delay=1e-4, **proto_kwargs):
        self.cluster = Cluster.build(nodes=nranks, seed=seed)
        self.engine = self.cluster.engine
        self.level = level
        self.store = CheckpointStore(self.engine)
        self.safe_point_delay = safe_point_delay
        book: Dict[int, tuple] = {}
        self.apis: List[MpiApi] = []
        for rank in range(nranks):
            ep = MpiEndpoint(self.engine, self.cluster.node(f"n{rank}"),
                             app_id="testapp", world_rank=rank,
                             addressbook=book)
            self.apis.append(MpiApi(ep, nprocs=nranks))
        self.app_state = {r: {"counter": 0, "rank": r}
                          for r in range(nranks)}
        self.ctxs = [FakeContext(self, r) for r in range(nranks)]
        self.protocols = []
        for r in range(nranks):
            proto = make_protocol(protocol, **proto_kwargs)
            proto.start(self.ctxs[r])
            self.protocols.append(proto)

    def relay(self, payload, source_rank):
        """Lightweight-group cast emulation: total order (relay through a
        sequencer), constant per-hop latency."""
        arrive = self.engine.timeout(2 * LOCAL_TCP_HOP + 0.0004)

        def deliver(_ev):
            for proto in self.protocols:
                proto.deliver(payload, source_rank)
        arrive.callbacks.append(deliver)

    def run(self, until):
        self.engine.run(until=until)

    def run_app(self, fn, until=60.0):
        """Run generator fn(mpi, rank, harness) per rank to completion."""
        procs = []
        for rank, mpi in enumerate(self.apis):
            procs.append(self.cluster.node(f"n{rank}").spawn(
                fn(mpi, rank, self), name=f"app{rank}"))
        self.engine.run(until=until)
        for p in procs:
            assert p.triggered, f"{p.name} deadlocked"
            if not p.ok:
                raise p.value
        return [p.value for p in procs]

    def safe_point(self, rank):
        """Generator: cooperative safe point inside fake app code."""
        while self.ctxs[rank].paused:
            yield self.engine.timeout(self.safe_point_delay)
