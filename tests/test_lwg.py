"""Lightweight groups: membership replication, scoped casts, failures."""

import pytest

from repro.errors import NotMember
from repro.gcs import GroupMember
from repro.lwg import LwgCast, LwgManager, LwgView
from repro.lwg.events import LwgP2p

from tests.gcs_helpers import Harness


class LwgHarness(Harness):
    """GCS harness plus one LwgManager per daemon, wired into its events."""

    def __init__(self, nodes=4, seed=0):
        super().__init__(nodes=nodes, seed=seed)
        self.lwg = {}
        self.lwg_log = {}
        for nid, gm in self.members.items():
            self.lwg[nid] = LwgManager(self.engine, gm)

    # Replace the plain recorder: route events through the lwg manager.
    def _recorder(self, node_id, gm):
        try:
            while True:
                ev = yield gm.events.get()
                if not self.lwg[node_id].on_main_event(ev):
                    self.log[node_id].append(ev)
        except Exception:
            return

    def watch(self, node_id: str, app_id: str):
        """Record the lwg upcalls for (node, app)."""
        ch = self.lwg[node_id].subscribe(app_id)
        self.lwg_log[(node_id, app_id)] = []

        def pump():
            try:
                while True:
                    ev = yield ch.get()
                    self.lwg_log[(node_id, app_id)].append(ev)
            except Exception:
                return

        self.cluster.node(node_id).spawn(pump())

    def lwg_casts(self, node_id, app_id):
        return [e.payload for e in self.lwg_log[(node_id, app_id)]
                if isinstance(e, LwgCast)]

    def lwg_views(self, node_id, app_id):
        return [e for e in self.lwg_log[(node_id, app_id)]
                if isinstance(e, LwgView)]


def booted(nodes=4, seed=0):
    h = LwgHarness(nodes=nodes, seed=seed)
    h.boot_all()
    h.run(until=2.0)
    return h


def eps(h, *nids):
    return tuple(h.members[n].endpoint for n in nids)


def test_create_replicates_membership_everywhere():
    h = booted()
    h.lwg["n0"].create("app1", eps(h, "n0", "n1", "n2"))
    h.run(until=3.0)
    for nid in h.members:  # even n3, which is not a member, knows the group
        got = {m.node for m in h.lwg[nid].members("app1")}
        assert got == {"n0", "n1", "n2"}, nid


def test_lwg_cast_scoped_to_members():
    h = booted()
    for nid in h.members:
        h.watch(nid, "app1")
    h.lwg["n0"].create("app1", eps(h, "n0", "n1", "n2"))
    h.run(until=3.0)
    h.lwg["n1"].cast("app1", {"op": "sync"})
    h.run(until=4.0)
    for nid in ("n0", "n1", "n2"):
        assert h.lwg_casts(nid, "app1") == [{"op": "sync"}], nid
    assert h.lwg_casts("n3", "app1") == []


def test_lwg_casts_totally_ordered():
    h = booted()
    for nid in ("n0", "n1", "n2"):
        h.watch(nid, "a")
    h.lwg["n0"].create("a", eps(h, "n0", "n1", "n2"))
    h.run(until=3.0)
    for nid in ("n0", "n1", "n2"):
        for i in range(4):
            h.lwg[nid].cast("a", (nid, i))
    h.run(until=5.0)
    seqs = [h.lwg_casts(nid, "a") for nid in ("n0", "n1", "n2")]
    assert all(len(s) == 12 for s in seqs)
    assert seqs[0] == seqs[1] == seqs[2]
    # FIFO per sender
    for nid in ("n0", "n1", "n2"):
        mine = [p for p in seqs[0] if p[0] == nid]
        assert mine == [(nid, i) for i in range(4)]


def test_cast_by_non_member_rejected():
    h = booted()
    h.lwg["n0"].create("a", eps(h, "n0", "n1"))
    h.run(until=3.0)
    with pytest.raises(NotMember):
        h.lwg["n3"].cast("a", "intruder")


def test_two_groups_are_independent():
    h = booted()
    for nid in h.members:
        h.watch(nid, "a")
        h.watch(nid, "b")
    h.lwg["n0"].create("a", eps(h, "n0", "n1"))
    h.lwg["n0"].create("b", eps(h, "n2", "n3"))
    h.run(until=3.0)
    h.lwg["n0"].cast("a", "for-a")
    h.lwg["n2"].cast("b", "for-b")
    h.run(until=4.0)
    assert h.lwg_casts("n1", "a") == ["for-a"]
    assert h.lwg_casts("n1", "b") == []
    assert h.lwg_casts("n3", "b") == ["for-b"]
    assert h.lwg_casts("n3", "a") == []


def test_join_and_leave():
    h = booted()
    for nid in h.members:
        h.watch(nid, "a")
    h.lwg["n0"].create("a", eps(h, "n0", "n1"))
    h.run(until=3.0)
    h.lwg["n3"].join("a")
    h.run(until=4.0)
    assert {m.node for m in h.lwg["n0"].members("a")} == {"n0", "n1", "n3"}
    h.lwg["n3"].cast("a", "newcomer")
    h.run(until=5.0)
    assert "newcomer" in h.lwg_casts("n0", "a")
    h.lwg["n1"].leave("a")
    h.run(until=6.0)
    assert {m.node for m in h.lwg["n0"].members("a")} == {"n0", "n3"}
    # The leaver saw its own departure as an LwgView.
    last = h.lwg_views("n1", "a")[-1]
    assert h.members["n1"].endpoint in last.left


def test_node_crash_shrinks_lightweight_group():
    # Paper fig. 2 semantics: a main-view change propagates to exactly the
    # lightweight groups containing the failed node.
    h = booted()
    for nid in ("n0", "n1", "n2"):
        h.watch(nid, "a")
    h.lwg["n0"].create("a", eps(h, "n0", "n1", "n2"))
    h.lwg["n0"].create("b", eps(h, "n0", "n1"))
    h.run(until=3.0)
    h.cluster.crash_node("n2")
    h.run(until=6.0)
    assert {m.node for m in h.lwg["n0"].members("a")} == {"n0", "n1"}
    assert {m.node for m in h.lwg["n0"].members("b")} == {"n0", "n1"}
    views = h.lwg_views("n0", "a")
    assert any(any(m.node == "n2" for m in v.left) for v in views)


def test_app_process_exit_changes_only_its_lwg():
    # An application process terminating on a node (daemon leaves the lwg)
    # must not disturb the main Starfish group or other lwgs.
    h = booted()
    h.lwg["n0"].create("a", eps(h, "n0", "n1", "n2"))
    h.lwg["n0"].create("b", eps(h, "n1", "n2"))
    h.run(until=3.0)
    main_views_before = len(h.views("n0"))
    h.lwg["n2"].leave("a")
    h.run(until=4.0)
    assert {m.node for m in h.lwg["n0"].members("a")} == {"n0", "n1"}
    assert {m.node for m in h.lwg["n0"].members("b")} == {"n1", "n2"}
    assert len(h.views("n0")) == main_views_before  # no main view change


def test_cast_concurrent_with_coordinator_crash_is_redelivered():
    h = booted()
    for nid in ("n1", "n2"):
        h.watch(nid, "a")
    h.lwg["n0"].create("a", eps(h, "n0", "n1", "n2"))
    h.run(until=3.0)
    # n0 is the lwg coordinator (lowest endpoint).  Cast from n2 and crash
    # n0 at the same instant: the re-send path must deliver it via the new
    # coordinator once membership shrinks.
    h.lwg["n2"].cast("a", "must-survive")
    h.cluster.crash_node("n0")
    h.run(until=8.0)
    assert h.lwg_casts("n1", "a") == ["must-survive"]
    assert h.lwg_casts("n2", "a") == ["must-survive"]


def test_destroy_group():
    h = booted()
    h.watch("n1", "a")
    h.lwg["n0"].create("a", eps(h, "n0", "n1"))
    h.run(until=3.0)
    h.lwg["n0"].destroy("a")
    h.run(until=4.0)
    assert h.lwg["n1"].members("a") == ()
    last = h.lwg_views("n1", "a")[-1]
    assert last.members == ()


def test_lwg_p2p_between_members():
    h = booted()
    h.watch("n1", "a")
    h.lwg["n0"].create("a", eps(h, "n0", "n1"))
    h.run(until=3.0)
    h.lwg["n0"].send("a", h.members["n1"].endpoint, "direct",
                     kind="checkpoint/restart")
    h.run(until=4.0)
    p2ps = [e for e in h.lwg_log[("n1", "a")] if isinstance(e, LwgP2p)]
    assert len(p2ps) == 1
    assert p2ps[0].payload == "direct"
    assert p2ps[0].kind == "checkpoint/restart"


def test_duplicate_create_ignored():
    h = booted()
    h.lwg["n0"].create("a", eps(h, "n0", "n1"))
    h.lwg["n1"].create("a", eps(h, "n2", "n3"))  # loses the total-order race
    h.run(until=3.0)
    # Whichever create was ordered first wins at *every* daemon identically.
    results = {nid: tuple(m.node for m in h.lwg[nid].members("a"))
               for nid in h.members}
    assert len(set(results.values())) == 1


# ---------------------------------------------------------------------------
# ordering epochs: gseq numbering restarts on every membership change, and
# the sequencer's direct sends are not ordered against the main group's
# total order — receivers must park traffic from changes they have not
# applied yet instead of dropping it (a dropped gseq wedges the stream)
# ---------------------------------------------------------------------------

def test_future_epoch_ord_parked_until_membership_catches_up():
    h = booted()
    h.lwg["n0"].create("app1", eps(h, "n0", "n1", "n2"))
    h.run(until=3.0)
    h.watch("n2", "app1")
    m2 = h.lwg["n2"]
    state = m2.groups["app1"]
    ep3 = h.members["n3"].endpoint
    # An ord sequenced under n3's join, arriving before n2 applies it.
    m2._receive_ordered(("lwg-ord", "app1", state.epoch + 1, 0, ep3, 0,
                         "hello", "coordination"))
    h.run(until=3.3)
    assert h.lwg_casts("n2", "app1") == []        # parked, not delivered
    m2._apply_op(("lwg-op", "join", "app1", ep3))
    h.run(until=3.6)
    assert h.lwg_casts("n2", "app1") == ["hello"]


def test_stale_epoch_ord_dropped_after_membership_change():
    h = booted()
    h.lwg["n0"].create("app1", eps(h, "n0", "n1", "n2"))
    h.run(until=3.0)
    h.watch("n2", "app1")
    m2 = h.lwg["n2"]
    old_epoch = m2.groups["app1"].epoch
    m2._apply_op(("lwg-op", "join", "app1", h.members["n3"].endpoint))
    ep0 = h.members["n0"].endpoint
    # A pre-change ord limping in late: its numbering is obsolete and its
    # payload was re-driven by the origin, so it must not deliver.
    m2._receive_ordered(("lwg-ord", "app1", old_epoch, 0, ep0, 7,
                         "stale", "coordination"))
    h.run(until=3.5)
    assert h.lwg_casts("n2", "app1") == []


def test_ord_before_replica_exists_is_parked_and_replayed():
    h = booted()
    m3 = h.lwg["n3"]
    h.watch("n3", "app1")
    ep0 = h.members["n0"].endpoint
    ep3 = h.members["n3"].endpoint
    # A joining daemon can receive group traffic before the state blob
    # that tells it the group exists (different senders, no mutual FIFO).
    m3._receive_ordered(("lwg-ord", "app1", 0, 0, ep0, 0, "early",
                         "coordination"))
    assert "app1" in m3._orphans
    m3._apply_op(("lwg-op", "create", "app1", (ep0, ep3)))
    h.run(until=2.5)
    assert h.lwg_casts("n3", "app1") == ["early"]


def test_sequencer_parks_data_from_not_yet_admitted_origin():
    h = booted()
    h.lwg["n0"].create("app1", eps(h, "n0", "n1"))
    h.run(until=3.0)
    h.watch("n0", "app1")
    m0 = h.lwg["n0"]                 # n0 is min(members): the sequencer
    ep2 = h.members["n2"].endpoint
    # ep2 applied its (totally ordered) join before the sequencer did and
    # is already casting; dropping would lose the message for good.
    m0._sequence(("lwg-data", "app1", ep2, 0, "fresh", "coordination"))
    h.run(until=3.3)
    assert h.lwg_casts("n0", "app1") == []
    m0._apply_op(("lwg-op", "join", "app1", ep2))
    h.run(until=3.6)
    assert h.lwg_casts("n0", "app1") == ["fresh"]


def test_absorb_filters_dead_members_and_counts_the_epoch_bump():
    from repro.gcs.endpoint import EndpointId
    h = booted()
    m1 = h.lwg["n1"]
    ghost = EndpointId("nX", "daemon", 10 ** 6)   # not in any view
    live = h.members["n0"].endpoint
    m1.absorb({"appZ": ((live, ghost), 4)})
    state = m1.groups["appZ"]
    assert ghost not in state.members and live in state.members
    # The view that killed `ghost` bumps the epoch once on every old
    # replica; the absorbed copy must count the same bump.
    assert state.epoch == 5
