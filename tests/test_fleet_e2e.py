"""End-to-end fleet churn acceptance (ISSUE 9).

Three tenants, 13 submissions against quotas on a 16-node cluster under
a churn fault schedule.  The headline assertions:

* the victim app (one rank pinned on the doomed node) is proactively
  migrated off *before* the scheduled crash and finishes with **zero**
  failure restarts (it pays ``daemon.ranks_migrated`` instead);
* the oversized submission is rejected with the typed quota reason;
* the FleetOracle stays green;
* the report is byte-identical run over run, and across perturbation
  seeds (the 20-seed CI sweep runs a larger version of the same check).
"""

import pytest

from repro.errors import CampaignError
from repro.faults import CAMPAIGNS
from repro.fleet import report_bytes, run_fleet_churn, sweep_fleet_churn
from repro.fleet.campaign import CRASH_AT, SUSPECT_NODE


@pytest.fixture(scope="module")
def report():
    return run_fleet_churn(nodes=16, seed=0, strict=True)


def test_proactive_migration_beats_the_crash(report):
    assert report["victim_migrated_at"] is not None
    assert report["victim_migrated_at"] < CRASH_AT
    victim = report["victim"]
    assert report["ranks_restarted"].get(victim, 0) == 0
    assert report["ranks_migrated"].get(victim, 0) >= 1
    moves = [m for m in report["migrations"] if m["app"] == victim]
    assert moves and moves[0]["src"] == SUSPECT_NODE


def test_tenants_quotas_and_outcomes(report):
    states = {}
    for job in report["jobs"]:
        states[job["state"]] = states.get(job["state"], 0) + 1
    assert states.get("done", 0) >= 10
    rejected = [j for j in report["jobs"] if j["state"] == "rejected"]
    assert any(j["reason"] == "quota-exceeded" for j in rejected)
    assert report["oracle"] == "ok"
    tenants = {j["tenant"] for j in report["jobs"]}
    assert tenants == {"acme", "globex", "initech"}


def test_crashes_really_landed(report):
    crash_lines = [line for line in report["faults"]
                   if "crash-node" in line]
    assert len(crash_lines) == 2
    assert any(SUSPECT_NODE in line for line in crash_lines)
    assert report["duration"] >= 12.0


def test_report_is_byte_identical():
    a = run_fleet_churn(nodes=16, seed=0, strict=True)
    b = run_fleet_churn(nodes=16, seed=0, strict=True)
    assert report_bytes(a) == report_bytes(b)


def test_small_perturbation_sweep_green():
    summary = sweep_fleet_churn(nodes=16, seed=0, seeds=2)
    assert summary["sweeps"] == 3            # base + 2 perturbed
    assert all(r["oracle"] == "ok" for r in summary["runs"])
    assert all(r["victim_migrated_at"] < CRASH_AT
               for r in summary["runs"])


def test_too_small_cluster_is_a_typed_error():
    with pytest.raises(CampaignError, match=">= 8 nodes"):
        run_fleet_churn(nodes=4)


def test_fleet_churn_registered_as_chaos_campaign():
    campaign = CAMPAIGNS["fleet-churn"]
    assert campaign.expect_completion
    assert campaign.nodes >= 8
