"""Local checkpointers, storage, and timing model unit tests."""

import numpy as np
import pytest

from repro.calibration import (NATIVE_DISK_BANDWIDTH, NATIVE_EMPTY_IMAGE,
                               VM_DUMP_BANDWIDTH, VM_EMPTY_IMAGE,
                               native_checkpoint_time, vm_checkpoint_time)
from repro.ckpt import (CheckpointRecord, CheckpointStore,
                        NativeCheckpointer, VmCheckpointer, make_checkpointer)
from repro.cluster import Cluster, arch_by_name
from repro.errors import CheckpointError, NoCheckpoint

LINUX = arch_by_name("Intel P-II 350 MHz, i686")
SUN = arch_by_name("Sun Ultra Enterprise 3000")
WINNT = arch_by_name("Intel P-II, 350 MHz")

STATE = {"iter": 42, "grid": np.ones(100), "label": "x"}


def test_factory():
    assert isinstance(make_checkpointer("native"), NativeCheckpointer)
    assert isinstance(make_checkpointer("vm"), VmCheckpointer)
    with pytest.raises(CheckpointError):
        make_checkpointer("quantum")


def test_native_empty_image_size_matches_paper():
    image, nbytes = NativeCheckpointer().capture({}, LINUX)
    # 632 KB for an "empty" program, plus a sliver for the empty dict.
    assert nbytes == pytest.approx(NATIVE_EMPTY_IMAGE, rel=0.01)


def test_vm_empty_image_size_matches_paper():
    _, nbytes = VmCheckpointer().capture({}, LINUX)
    assert nbytes == pytest.approx(VM_EMPTY_IMAGE, rel=0.01)


def test_native_roundtrip_same_representation():
    ck = NativeCheckpointer()
    image, nbytes = ck.capture(STATE, LINUX)
    state, extra = ck.restore(image, nbytes, WINNT)  # same repr as LINUX
    assert extra == 0.0
    assert state["iter"] == 42
    assert np.array_equal(state["grid"], STATE["grid"])


def test_native_rejects_cross_representation_restore():
    ck = NativeCheckpointer()
    image, nbytes = ck.capture(STATE, LINUX)
    with pytest.raises(CheckpointError, match="heterogeneous"):
        ck.restore(image, nbytes, SUN)


def test_native_capture_is_deep_copy():
    ck = NativeCheckpointer()
    state = {"xs": [1, 2, 3]}
    image, _ = ck.capture(state, LINUX)
    state["xs"].append(4)
    restored, _ = ck.restore(image, 0, LINUX)
    assert restored["xs"] == [1, 2, 3]


def test_vm_roundtrip_cross_representation_charges_conversion():
    ck = VmCheckpointer()
    image, nbytes = ck.capture(STATE, LINUX)
    state, extra = ck.restore(image, nbytes, SUN)
    assert extra > 0.0
    assert np.array_equal(state["grid"], STATE["grid"])
    # Same representation: no conversion cost.
    _, extra_same = ck.restore(image, nbytes, WINNT)
    assert extra_same == 0.0


def test_vm_image_smaller_than_native_for_same_state():
    big = {"grid": np.zeros(200_000, dtype=np.float64)}
    _, n_native = NativeCheckpointer().capture(big, LINUX)
    _, n_vm = VmCheckpointer().capture(big, LINUX)
    assert n_vm < n_native


def test_store_write_read_cycle():
    cluster = Cluster.build(nodes=1)
    store = CheckpointStore(cluster.engine)
    node = cluster.node("n0")
    rec = CheckpointRecord(app_id="a", rank=0, version=1, level="native",
                           nbytes=1000, image=("native-image", LINUX.name,
                                               {"x": 1}),
                           arch_name=LINUX.name, taken_at=0.0)

    def writer():
        yield from store.write(node, rec)
        got = yield from store.read(node, "a", 0, 1)
        return got

    out = cluster.engine.run(cluster.engine.process(writer()))
    assert out is rec
    assert store.stats["writes"] == 1
    assert store.stats["reads"] == 1


def test_store_missing_checkpoint_raises():
    cluster = Cluster.build(nodes=1)
    store = CheckpointStore(cluster.engine)
    with pytest.raises(NoCheckpoint):
        store.peek("ghost", 0, 0)


def test_store_commit_tracking():
    store = CheckpointStore(None)
    assert store.latest_committed("a") is None
    store.commit("a", 1)
    store.commit("a", 2)
    assert store.latest_committed("a") == 2
    assert store.committed_versions("a") == [1, 2]


def test_store_drop_app():
    store = CheckpointStore(None)
    rec = CheckpointRecord(app_id="a", rank=0, version=0, level="vm",
                           nbytes=10, image=b"", arch_name="x", taken_at=0)
    store._records[("a", 0, 0)] = rec
    store.commit("a", 0)
    store.drop_app("a")
    assert not store.has("a", 0, 0)
    assert store.latest_committed("a") is None


def test_write_time_follows_level_bandwidth():
    cluster = Cluster.build(nodes=1)
    store = CheckpointStore(cluster.engine)
    node = cluster.node("n0")
    rec = CheckpointRecord(app_id="a", rank=0, version=1, level="vm",
                           nbytes=int(VM_DUMP_BANDWIDTH), image=b"",
                           arch_name="x", taken_at=0.0)

    def writer():
        t0 = cluster.engine.now
        yield from store.write(node, rec, bandwidth=VM_DUMP_BANDWIDTH)
        return cluster.engine.now - t0

    assert cluster.engine.run(cluster.engine.process(writer())) == \
        pytest.approx(1.0)


# ---------------------------------------------------------------------------
# the closed-form timing model hits the paper's anchors exactly
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("nodes,expected", [(1, 0.104061), (2, 0.131898),
                                            (4, 0.149219)])
def test_fig3_model_anchors(nodes, expected):
    assert native_checkpoint_time(0, nodes) == pytest.approx(expected)


@pytest.mark.parametrize("nodes,expected", [(1, 0.0077), (2, 0.0205),
                                            (4, 0.052)])
def test_fig4_model_anchors(nodes, expected):
    assert vm_checkpoint_time(0, nodes) == pytest.approx(expected)


def test_models_grow_linearly_in_payload():
    for fn in (native_checkpoint_time, vm_checkpoint_time):
        t1 = fn(10_000_000, 2)
        t2 = fn(20_000_000, 2)
        t3 = fn(30_000_000, 2)
        assert t2 - t1 == pytest.approx(t3 - t2)
        assert t2 > t1
