"""Message-logging protocols: sender logs, solo replay, planners, e2e.

Covers the pieces the logging protocols add on top of the four-role
protocol layer: the store's sender-side channel logs, the
:class:`SoloReplayPlanner` (restart only the crashed rank) against the
:class:`DependencyRollbackPlanner` domino, the :class:`ReplayTap`'s
duplicate suppression and restore-time replay, the :class:`ReplayOracle`
invariants, and full solo restarts through the Starfish stack.
"""

import pytest

from repro.ckpt import CheckpointStore
from repro.ckpt.protocols.msg_logging import (CausalLoggingProtocol,
                                              SenderLoggingProtocol)
from repro.ckpt.protocols.roles import (DependencyRollbackPlanner,
                                        SoloReplayPlanner)
from repro.ckpt.storage import CheckpointRecord
from repro.cluster import Cluster
from repro.errors import OracleViolation

from ckpt_helpers import CrHarness


# ---------------------------------------------------------------------------
# store: sender-based message logs
# ---------------------------------------------------------------------------

def _store():
    cluster = Cluster.build(nodes=1, seed=0)
    return CheckpointStore(cluster.engine)


def test_log_append_is_idempotent_per_ssn():
    store = _store()
    assert store.log_append("app", 0, 1, 1, ("c", 0, 10, "x", 8), nbytes=8)
    # A restarted sender re-executing its past re-appends the same ssn:
    # no log growth, no IO billed (the caller keys IO off the False).
    assert not store.log_append("app", 0, 1, 1, ("c", 0, 10, "x", 8),
                                nbytes=8)
    assert store.log_end("app", 0, 1) == 1
    assert len(store.log_tail("app", 0, 1)) == 1


def test_log_tail_end_and_senders():
    store = _store()
    for ssn in (1, 2, 3):
        store.log_append("app", 0, 2, ssn, ("c", 0, 10, ssn, 4), nbytes=4)
    store.log_append("app", 1, 2, 1, ("c", 1, 11, "y", 4), nbytes=4)
    assert store.log_end("app", 0, 2) == 3
    assert store.log_end("app", 9, 2) == 0          # empty channel
    assert [ssn for ssn, _e in store.log_tail("app", 0, 2, after_ssn=1)] \
        == [2, 3]
    assert store.log_senders("app", 2) == [0, 1]
    assert store.log_senders("app", 0) == []


def test_drop_app_clears_message_logs():
    store = _store()
    store.log_append("app", 0, 1, 1, ("c", 0, 10, "x", 8))
    store.log_append("other", 0, 1, 1, ("c", 0, 10, "x", 8))
    store.drop_app("app")
    assert store.log_end("app", 0, 1) == 0
    assert store.log_end("other", 0, 1) == 1


# ---------------------------------------------------------------------------
# planners: solo replay vs dependency-rollback domino (same store state)
# ---------------------------------------------------------------------------

class _StubDaemon:
    """Just enough daemon for RestartPlanner.plan()."""

    def __init__(self, store, node):
        self.store = store
        self.node = node


class _StubRecord:
    def __init__(self, app_id, placement):
        self.app_id = app_id
        self.placement = placement


def _write(engine, store, node, rank, version, deps=()):
    rec = CheckpointRecord(
        app_id="app", rank=rank, version=version, level="vm", nbytes=100,
        image=b"s", arch_name="sparc-sunos", taken_at=engine.now,
        deps=list(deps))
    engine.process(store.write(node, rec))
    engine.run(until=engine.now + 0.5)


def _domino_fixture():
    """rank0 checkpointed once, then sent a message (its interval 1) that
    rank1 received *before* its own checkpoint: rolling rank0 back to v0
    orphans the receive inside rank1's v0."""
    cluster = Cluster.build(nodes=2, seed=0)
    engine = cluster.engine
    store = CheckpointStore(engine)
    n0 = cluster.node("n0")
    _write(engine, store, n0, rank=0, version=0)
    _write(engine, store, n0, rank=1, version=0, deps=[(0, 1, 0)])
    daemon = _StubDaemon(store, n0)
    record = _StubRecord("app", {0: "n0", 1: "n1"})
    return daemon, record


def test_solo_planner_restarts_exactly_the_failed_rank():
    daemon, record = _domino_fixture()
    plan = SoloReplayPlanner().plan(daemon, record, failed_ranks=[0])
    assert SoloReplayPlanner.solo
    assert plan["mode"] == "log-replay"
    assert plan["ranks"] == [0]                  # survivors keep running
    assert plan["line"] == {0: 0}                # own latest checkpoint


def test_dependency_rollback_dominoes_the_survivor():
    # The SAME store state under the uncoordinated planner: rank0's
    # re-execution of interval 1 orphans rank1's checkpoint, so the
    # recovery line rolls BOTH ranks back (rank1 to initial state).
    daemon, record = _domino_fixture()
    plan = DependencyRollbackPlanner().plan(daemon, record,
                                            failed_ranks=[0])
    assert not DependencyRollbackPlanner.solo
    assert plan["mode"] == "uncoordinated"
    assert plan["line"] == {0: 0, 1: -1}
    rolled_back = [r for r, v in plan["line"].items()]
    assert len(rolled_back) >= 2                 # everyone restarts


def test_solo_planner_falls_to_initial_without_checkpoints():
    cluster = Cluster.build(nodes=1, seed=0)
    store = CheckpointStore(cluster.engine)
    daemon = _StubDaemon(store, cluster.node("n0"))
    record = _StubRecord("app", {0: "n0", 1: "n0"})
    plan = SoloReplayPlanner().plan(daemon, record, failed_ranks=[1])
    assert plan["line"] == {1: -1}


# ---------------------------------------------------------------------------
# the tap: piggybacked ssns, duplicate suppression, restore-time replay
# ---------------------------------------------------------------------------

def _app_exchange(mpi, rank, h):
    """Two rounds of 0 -> 1 sends (the logging path under test)."""
    if rank == 0:
        yield from mpi.send("one", dest=1, tag=10)
        yield from mpi.send("two", dest=1, tag=10)
        return "sent"
    first = yield from mpi.recv(source=0, tag=10)
    second = yield from mpi.recv(source=0, tag=10)
    return (first, second)


def test_sender_logging_logs_every_send_with_ssn():
    h = CrHarness(nranks=2, protocol="sender-logging")
    results = h.run_app(_app_exchange)
    assert results[1] == ("one", "two")
    store = h.store
    assert store.log_end("testapp", 0, 1) == 2
    entries = [e for _ssn, e in store.log_tail("testapp", 0, 1)]
    assert [e[3] for e in entries] == ["one", "two"]
    # Pessimistic logging bills the send-path disk write per message.
    assert h.cluster.node("n0").disk.bytes_written > 0


def test_causal_logging_defers_log_io_to_the_checkpoint():
    h = CrHarness(nranks=2, protocol="causal-logging")
    h.run_app(_app_exchange)
    # Entries recorded immediately...
    assert h.store.log_end("testapp", 0, 1) == 2
    proto = h.protocols[0]
    assert proto._unflushed_bytes > 0
    # ...but no disk traffic until the next checkpoint flushes the batch.
    assert h.cluster.node("n0").disk.bytes_written == 0
    ev = proto.request_checkpoint()
    h.run(until=h.engine.now + 2.0)
    assert ev.triggered
    assert proto._unflushed_bytes == 0
    assert h.cluster.node("n0").disk.bytes_written > 0


def test_tap_suppresses_duplicate_ssn_deliveries():
    h = CrHarness(nranks=2, protocol="sender-logging")
    h.run_app(_app_exchange)
    tap = h.protocols[1].tap
    ep = h.apis[1].endpoint
    assert ep.recv_count[0] == 2
    # A restarted sender re-executing its past re-sends ssn 1: suppressed.
    assert tap.on_deliver(0, object(), ("ssn", 1)) is True
    # The next fresh ssn (logged by its sender first — the pessimistic
    # ordering the oracle enforces) passes through to the matching engine.
    comm = h.apis[1].world.comm_id
    h.store.log_append("testapp", 0, 1, 3, (comm, 0, 10, "three", 8))
    assert tap.on_deliver(0, object(), ("ssn", 3)) is False


def test_tap_stashes_live_traffic_while_restoring_and_replays_log():
    from repro.mpi.matching import InboundMsg
    h = CrHarness(nranks=2, protocol="sender-logging")
    store, engine = h.store, h.engine
    # Sender log: three messages toward rank 1 on the world communicator.
    comm = h.apis[1].world.comm_id
    for ssn in (1, 2, 3):
        store.log_append("testapp", 0, 1, ssn,
                         (comm, 0, 10, f"m{ssn}", 16), nbytes=16)
    proto = h.protocols[1]
    tap = proto.tap
    ep = h.apis[1].endpoint
    ep.recv_count[0] = 1                 # checkpoint consumed ssn 1 already
    tap._holding = True
    live = InboundMsg(comm_id=comm, source=0, tag=10, data="live", nbytes=16)
    assert tap.on_deliver(0, live, ("ssn", 4)) is True     # stashed
    assert tap._stash
    done = engine.process(tap.replay(ep, store))
    engine.run(until=engine.now + 2.0)
    assert done.triggered and done.ok
    # Replay fed ssns 2..3 and then released the stashed live message.
    assert ep.recv_count[0] == 4
    datas = [m.data for m in ep.matching.unexpected]
    assert datas == ["m2", "m3", "live"]
    assert tap._holding is False and not tap._stash


def test_replay_oracle_rejects_orphans_and_double_replay():
    proto = SenderLoggingProtocol()
    oracle = proto.replay_oracle
    oracle.bind(1)
    # Restored state consumed more than the log covers: orphan.
    with pytest.raises(OracleViolation):
        oracle.restored(0, recv_count=5, log_end=3)
    oracle.replayed(0, ssn=2, expected=2)
    with pytest.raises(OracleViolation):
        oracle.replayed(0, ssn=2, expected=3)     # fed twice
    with pytest.raises(OracleViolation):
        oracle.delivered(0, ssn=9, log_end=3)     # beyond the stable log


def test_protocol_classes_expose_planner_and_boundary_flag():
    for cls in (SenderLoggingProtocol, CausalLoggingProtocol):
        assert cls.planner is SoloReplayPlanner
        assert cls.wants_boundary_capture
    assert SenderLoggingProtocol.name == "sender-logging"
    assert CausalLoggingProtocol.name == "causal-logging"


# ---------------------------------------------------------------------------
# independent checkpoints through the harness
# ---------------------------------------------------------------------------

def test_log_take_checkpoints_locally_with_channel_state():
    h = CrHarness(nranks=2, protocol="sender-logging")
    h.run_app(_app_exchange)
    proto = h.protocols[0]
    ev = proto.request_checkpoint()
    h.run(until=h.engine.now + 2.0)
    assert ev.triggered
    assert h.store.versions_of("testapp", 0) == [0]
    rec = h.store.peek("testapp", 0, 0)
    assert rec.mpi_state["sent_count"] == {1: 2}
    assert "comm_seqs" in rec.mpi_state
    # No coordination: rank 1 did not checkpoint.
    assert h.store.versions_of("testapp", 1) == []


# ---------------------------------------------------------------------------
# end to end: crash one rank's node, watch it restart alone
# ---------------------------------------------------------------------------

def _solo_run(protocol, crash=True):
    from repro.apps.jacobi import Jacobi1D
    from repro.core.appspec import AppSpec, CheckpointConfig
    from repro.core.policies import FaultPolicy
    from repro.core.starfish import StarfishCluster

    sf = StarfishCluster.build(nodes=5, seed=7)
    # Pessimistic logging charges a disk write per send, stretching each
    # iteration ~20x in simulated time; size the workload so every
    # protocol is still mid-run when the crash lands at rank 1's first
    # committed checkpoint (~t=0.2).
    iterations = 120 if protocol == "sender-logging" else 400
    spec = AppSpec(
        program=Jacobi1D, nprocs=4,
        params=dict(n=256, iterations=iterations, iters_per_step=10,
                    compute_ns_per_cell=30000),
        ft_policy=FaultPolicy.RESTART,
        checkpoint=CheckpointConfig(protocol=protocol, level="native",
                                    interval=0.15))
    handle = sf.submit(spec)
    if crash:
        # Crash rank 1's node as soon as it has a committed checkpoint.
        while not sf.store.versions_of(handle.app_id, 1):
            sf.engine.run(until=sf.engine.now + 0.05)
            assert sf.engine.now < 10.0, "no rank-1 checkpoint"
        victim = handle._record().placement[1]
        sf.crash_node(victim)
    results = sf.run_to_completion(handle, timeout=120.0)
    restarted = sf.engine.metrics.group_by("daemon.ranks_restarted", "app")
    return results, handle.restarts, restarted.get(handle.app_id, 0)


@pytest.mark.parametrize("protocol", ["sender-logging", "causal-logging"])
def test_solo_restart_end_to_end(protocol):
    golden, restarts, _ = _solo_run(protocol, crash=False)
    results, restarts, ranks_restarted = _solo_run(protocol)
    assert restarts == 1
    # THE point of message logging: only the crashed rank was respawned.
    assert ranks_restarted == 1
    assert results == golden                     # replay reconverged


def test_uncoordinated_crash_restarts_more_than_one_rank():
    # Same workload and crash under the dependency-rollback planner: the
    # recovery line restarts every rank (no sender logs to replay from).
    _results, restarts, ranks_restarted = _solo_run("uncoordinated")
    assert restarts >= 1
    assert ranks_restarted >= 2
