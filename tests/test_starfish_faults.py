"""End-to-end fault tolerance: the paper's §3 behaviours."""

import pytest

from repro.apps import BagOfTasks, ComputeSleep, Jacobi1D, MonteCarloPi
from repro.cluster import TABLE2_MACHINES, arch_by_name
from repro.core import AppSpec, CheckpointConfig, FaultPolicy, StarfishCluster
from repro.daemon import AppStatus
from repro.errors import DaemonError


def node_of_rank(handle, rank):
    return handle._record().placement[rank]


# ---------------------------------------------------------------------------
# KILL (the non-fault-tolerant baseline)
# ---------------------------------------------------------------------------

def test_kill_policy_fails_app_on_node_crash():
    sf = StarfishCluster.build(nodes=3)
    handle = sf.submit(AppSpec(program=ComputeSleep, nprocs=3,
                               params={"steps": 100, "step_time": 0.05},
                               ft_policy=FaultPolicy.KILL))
    sf.engine.run(until=sf.engine.now + 1.0)
    sf.crash_node(node_of_rank(handle, 2))
    sf.engine.run(until=sf.engine.now + 3.0)
    assert handle.status is AppStatus.FAILED


def test_unaffected_app_survives_other_nodes_crash():
    # High availability: an app with no process on the failed node runs on
    # transparently (paper §3.1.3).
    sf = StarfishCluster.build(nodes=4)
    handle = sf.submit(AppSpec(program=ComputeSleep, nprocs=2,
                               params={"steps": 10, "step_time": 0.05},
                               ft_policy=FaultPolicy.KILL,
                               placement={0: "n0", 1: "n1"}))
    sf.engine.run(until=sf.engine.now + 0.3)
    sf.crash_node("n3")
    results = sf.run_to_completion(handle)
    assert results == {0: 10, 1: 10}


# ---------------------------------------------------------------------------
# VIEW_NOTIFY (trivially parallel repartitioning)
# ---------------------------------------------------------------------------

def test_view_notify_montecarlo_survives_crash():
    sf = StarfishCluster.build(nodes=4)
    handle = sf.submit(AppSpec(
        program=MonteCarloPi, nprocs=4,
        params={"shots": 200_000, "chunk": 1000,
                "compute_ns_per_shot": 60_000},
        ft_policy=FaultPolicy.VIEW_NOTIFY))
    sf.engine.run(until=sf.engine.now + 1.0)
    victim = node_of_rank(handle, 3)
    sf.crash_node(victim)
    results = sf.run_to_completion(handle, timeout=300)
    # The dead rank never reports; survivors agree on pi.
    assert 3 not in results
    for rank, pi in results.items():
        assert pi == pytest.approx(3.14159, abs=0.05), rank
    assert handle.restarts == 0                     # no rollback happened
    assert handle._record().status is AppStatus.DONE


def test_view_notify_two_crashes():
    sf = StarfishCluster.build(nodes=5)
    handle = sf.submit(AppSpec(
        program=MonteCarloPi, nprocs=5,
        params={"shots": 300_000, "chunk": 1000,
                "compute_ns_per_shot": 60_000},
        ft_policy=FaultPolicy.VIEW_NOTIFY))
    sf.engine.run(until=sf.engine.now + 1.0)
    sf.crash_node(node_of_rank(handle, 4))
    sf.engine.run(until=sf.engine.now + 2.0)
    sf.crash_node(node_of_rank(handle, 3))
    results = sf.run_to_completion(handle, timeout=300)
    assert set(results) == {0, 1, 2}
    assert results[0] == pytest.approx(3.14159, abs=0.05)


def test_view_notify_bag_of_tasks_requeues_lost_work():
    sf = StarfishCluster.build(nodes=4)
    handle = sf.submit(AppSpec(
        program=BagOfTasks, nprocs=4,
        params={"tasks": 30, "task_time": 0.05},
        ft_policy=FaultPolicy.VIEW_NOTIFY))
    sf.engine.run(until=sf.engine.now + 0.8)   # mid-flight
    # Crash a worker (never the master on rank 0).
    sf.crash_node(node_of_rank(handle, 2))
    results = sf.run_to_completion(handle, timeout=300)
    assert results[0] == list(range(30))       # every task exactly once


# ---------------------------------------------------------------------------
# RESTART from checkpoints
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("protocol", ["stop-and-sync", "chandy-lamport"])
def test_restart_jacobi_from_coordinated_checkpoint(protocol):
    sf = StarfishCluster.build(nodes=4)
    handle = sf.submit(AppSpec(
        program=Jacobi1D, nprocs=4,
        params={"n": 256, "iterations": 400, "iters_per_step": 10,
                "compute_ns_per_cell": 200_000},
        ft_policy=FaultPolicy.RESTART,
        checkpoint=CheckpointConfig(protocol=protocol, level="vm",
                                    interval=1.5)))
    # Let it checkpoint at least once, then kill a node.
    sf.engine.run(until=sf.engine.now + 4.0)
    assert sf.store.latest_committed(handle.app_id) is not None
    victim = node_of_rank(handle, 1)
    sf.crash_node(victim)
    results = sf.run_to_completion(handle, timeout=600)
    iters, residual, total = results[0]
    assert iters == 400
    assert handle.restarts == 1
    # The dead node was replaced.
    assert node_of_rank(handle, 1) != victim


def test_restart_without_checkpoint_starts_from_scratch():
    sf = StarfishCluster.build(nodes=3)
    handle = sf.submit(AppSpec(
        program=ComputeSleep, nprocs=3,
        params={"steps": 20, "step_time": 0.05},
        ft_policy=FaultPolicy.RESTART))
    sf.engine.run(until=sf.engine.now + 0.6)
    sf.crash_node(node_of_rank(handle, 1))
    results = sf.run_to_completion(handle, timeout=300)
    assert results == {0: 20, 1: 20, 2: 20}
    assert handle.restarts == 1


def test_restart_uncoordinated_recovery_line():
    sf = StarfishCluster.build(nodes=3)
    handle = sf.submit(AppSpec(
        program=ComputeSleep, nprocs=3,
        params={"steps": 40, "step_time": 0.05},
        ft_policy=FaultPolicy.RESTART,
        checkpoint=CheckpointConfig(protocol="uncoordinated", level="vm",
                                    interval=0.5)))
    sf.engine.run(until=sf.engine.now + 1.6)
    sf.crash_node(node_of_rank(handle, 2))
    results = sf.run_to_completion(handle, timeout=600)
    assert results == {0: 40, 1: 40, 2: 40}
    assert handle.restarts == 1
    # Checkpoints were taken independently (several versions per rank).
    assert len(sf.store.versions_of(handle.app_id, 0)) >= 1


def test_restart_preserves_checkpointed_progress():
    # The app must NOT redo work before the recovery line: with steps of
    # 0.2s and a checkpoint every 1s, a crash at t~3 resumes near step 10+,
    # so completion happens well before a from-scratch rerun would allow.
    sf = StarfishCluster.build(nodes=2)
    handle = sf.submit(AppSpec(
        program=ComputeSleep, nprocs=2,
        params={"steps": 20, "step_time": 0.2},
        ft_policy=FaultPolicy.RESTART,
        checkpoint=CheckpointConfig(protocol="stop-and-sync", level="vm",
                                    interval=1.0)))
    sf.engine.run(until=sf.engine.now + 3.1)
    victim = node_of_rank(handle, 1)
    t_crash = sf.engine.now
    sf.crash_node(victim)
    sf.run_to_completion(handle, timeout=300)
    elapsed_after_crash = sf.engine.now - t_crash
    # From scratch it would need >= 20*0.2 = 4.0s after the crash.
    assert elapsed_after_crash < 3.5


# ---------------------------------------------------------------------------
# Heterogeneous restart (paper §4 + Table 2)
# ---------------------------------------------------------------------------

def test_heterogeneous_restart_across_endianness():
    # Rank 0 on a little-endian Linux/x86 node checkpoints at VM level and
    # is restarted on a big-endian Sun after its node dies.
    linux = arch_by_name("Intel P-II 350 MHz, i686")
    sun = arch_by_name("Sun Ultra Enterprise 3000")
    sf = StarfishCluster.build(nodes=3, archs=[linux, linux, sun])
    handle = sf.submit(AppSpec(
        program=ComputeSleep, nprocs=2,
        params={"steps": 30, "step_time": 0.05, "state_bytes": 100_000},
        ft_policy=FaultPolicy.RESTART,
        checkpoint=CheckpointConfig(protocol="stop-and-sync", level="vm",
                                    interval=0.5),
        placement={0: "n0", 1: "n1"}))
    sf.engine.run(until=sf.engine.now + 1.2)
    assert sf.store.latest_committed(handle.app_id) is not None
    sf.crash_node("n1")
    results = sf.run_to_completion(handle, timeout=300)
    assert results == {0: 30, 1: 30}
    # Rank 1 ended up on the big-endian node.
    assert node_of_rank(handle, 1) == "n2"


def test_native_checkpoint_restart_prefers_same_representation():
    # With native-level checkpoints the replacement node must have the same
    # representation; n2 (big-endian) is unusable, n3 (same repr) is used.
    linux = arch_by_name("Intel P-II 350 MHz, i686")
    sun = arch_by_name("Sun Ultra Enterprise 3000")
    winnt = arch_by_name("Intel P-II, 350 MHz")
    sf = StarfishCluster.build(nodes=4, archs=[linux, linux, sun, winnt])
    handle = sf.submit(AppSpec(
        program=ComputeSleep, nprocs=2,
        params={"steps": 30, "step_time": 0.05},
        ft_policy=FaultPolicy.RESTART,
        checkpoint=CheckpointConfig(protocol="stop-and-sync",
                                    level="native", interval=0.5),
        placement={0: "n0", 1: "n1"}))
    sf.engine.run(until=sf.engine.now + 1.2)
    sf.crash_node("n1")
    results = sf.run_to_completion(handle, timeout=300)
    assert results == {0: 30, 1: 30}
    assert node_of_rank(handle, 1) == "n3"   # same repr as the Linux nodes


def test_wave_completes_with_lingering_rank_on_reincarnated_node():
    # Regression: rank 2 is twice displaced by crashes, finishes on a
    # RECOVERED node, and later checkpoint waves still need its (finished,
    # lingering) module to participate.  This used to wedge two ways: the
    # recovered daemon accepted reliable-stream frames addressed to its
    # dead predecessor (shadowing fresh sequence numbers), and lwg-ord
    # messages racing the join op were dropped instead of parked — either
    # way the wave waited forever on the lingering rank's ss-counts.
    from repro.cluster import ClusterSpec
    from repro.faults import CrashNode, FaultPlan, RecoverNode

    sf = StarfishCluster.build(spec=ClusterSpec(nodes=5, seed=3,
                                                replication_factor=2))
    handle = sf.submit(AppSpec(
        program=ComputeSleep, nprocs=3,
        params={"steps": 24, "step_time": 0.25, "state_bytes": 8192},
        ft_policy=FaultPolicy.RESTART,
        checkpoint=CheckpointConfig(protocol="stop-and-sync",
                                    level="vm", interval=0.8)))
    FaultPlan() \
        .at(1.2, CrashNode(node="n2")) \
        .at(2.8, RecoverNode(node="n2")) \
        .at(4.4, CrashNode(node="n3")) \
        .at(6.0, RecoverNode(node="n3")) \
        .apply_to(sf)
    results = sf.run_to_completion(handle, timeout=120.0)
    assert results == {0: 24, 1: 24, 2: 24}
